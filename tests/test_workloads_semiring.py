"""The max-is-exact certification behind the max-product semiring.

The semiring's whole claim is that ``max`` over encoded values never
rounds: posit and LNS codes are *monotone* in the represented value,
so comparing codes (two's-complement for posit, int64 with the zero
sentinel smallest for LNS) IS comparing values.  These tests certify
that exhaustively at 8 bits — every operand pair of posit(8,1) and of
lns(4,3) — against scalar decode-and-compare ground truth, and pin
the batch/scalar/argmax agreement (same total order, same
first-index-wins tie-break) the Viterbi decision-identity tests build
on.
"""

import numpy as np
import pytest

from repro import nd
from repro.arith import Binary64Backend, LogSpaceBackend
from repro.arith.backends import LNSBackend, PositBackend
from repro.bigfloat import BigFloat
from repro.engine.lns_batch import ZERO_CODE, BatchLNS
from repro.engine.plan import ExecPlan
from repro.engine.posit_batch import BatchPosit
from repro.formats.lns import LNS_ZERO, LNSEnv
from repro.formats.posit import PositEnv
from repro.workloads.semiring import (
    MAX_PRODUCT,
    PAIRHMM_MAX,
    SEMIRINGS,
    SUM_PRODUCT,
    resolve_semiring,
)


def _posit_pairs(env):
    """Every (a, b) operand pair of an 8-bit posit environment."""
    codes = np.arange(1 << env.nbits, dtype=np.uint64)
    return np.repeat(codes, codes.size), np.tile(codes, codes.size)


def _lns_codes(env):
    """Every valid lns code, zero sentinel included."""
    return np.concatenate([
        np.array([ZERO_CODE], dtype=np.int64),
        np.arange(env.min_code, env.max_code + 1, dtype=np.int64)])


class TestPositMaxExhaustive:
    """posit(8,1): batch ``maximum`` equals decode-and-compare on all
    65536 operand pairs — the monotone-code certification."""

    ENV = PositEnv(8, 1)

    def _decoded(self, backend, code):
        # NaR has no value; the standard total-orders it below every
        # real, which the ground truth mirrors with -inf.
        if int(code) == self.ENV.nar:
            return BigFloat.from_int(0), True
        return backend.to_bigfloat(int(code)), False

    def test_batch_maximum_matches_decoded_order(self):
        backend = PositBackend(self.ENV)
        bp = BatchPosit(self.ENV)
        a, b = _posit_pairs(self.ENV)
        got = bp.maximum(a, b)
        for i in range(0, a.size, 97):
            av, a_nar = self._decoded(backend, a[i])
            bv, b_nar = self._decoded(backend, b[i])
            if b_nar or a_nar:
                want = b[i] if a_nar and not b_nar else a[i]
            else:
                # First operand wins ties (a == b is the only tie:
                # posit codes are unique per value).
                want = b[i] if bv.cmp(av) > 0 else a[i]
            assert int(got[i]) == int(want), (int(a[i]), int(b[i]))

    def test_batch_maximum_matches_scalar_everywhere(self):
        backend = PositBackend(self.ENV)
        bp = BatchPosit(self.ENV)
        a, b = _posit_pairs(self.ENV)
        got = bp.maximum(a, b)
        want = np.array([backend.maximum(int(x), int(y))
                         for x, y in zip(a.tolist(), b.tolist())],
                        dtype=np.uint64)
        assert np.array_equal(got, want)

    def test_batch_argmax_matches_scalar_decode(self):
        backend = PositBackend(self.ENV)
        bp = BatchPosit(self.ENV)
        rng = np.random.default_rng(5)
        arr = rng.integers(0, 1 << self.ENV.nbits,
                           size=(64, 7)).astype(np.uint64)
        got = bp.argmax(arr, axis=1)
        for r in range(arr.shape[0]):
            best = 0
            for j in range(1, arr.shape[1]):
                if backend.gt(int(arr[r, j]), int(arr[r, best])):
                    best = j
            assert int(got[r]) == best


class TestLNSMaxExhaustive:
    """lns(4,3): batch ``maximum`` equals decode-and-compare on every
    operand pair, the zero sentinel included."""

    ENV = LNSEnv(4, 3)

    def test_batch_maximum_matches_decoded_order(self):
        backend = LNSBackend(self.ENV)
        bl = BatchLNS(self.ENV)
        codes = _lns_codes(self.ENV)
        a = np.repeat(codes, codes.size)
        b = np.tile(codes, codes.size)
        got = bl.maximum(a, b)
        for i in range(a.size):
            av = BigFloat.from_int(0) if a[i] == ZERO_CODE \
                else self.ENV.decode_bigfloat(int(a[i]))
            bv = BigFloat.from_int(0) if b[i] == ZERO_CODE \
                else self.ENV.decode_bigfloat(int(b[i]))
            want = b[i] if bv.cmp(av) > 0 else a[i]
            assert int(got[i]) == int(want), (int(a[i]), int(b[i]))

    def test_batch_maximum_matches_scalar_everywhere(self):
        backend = LNSBackend(self.ENV)
        bl = BatchLNS(self.ENV)
        codes = _lns_codes(self.ENV)
        a = np.repeat(codes, codes.size)
        b = np.tile(codes, codes.size)
        got = bl.maximum(a, b)

        def scalar_value(code):
            return LNS_ZERO if code == ZERO_CODE else int(code)

        def batch_code(value):
            return ZERO_CODE if value == LNS_ZERO else int(value)

        for i in range(a.size):
            want = backend.maximum(scalar_value(a[i]), scalar_value(b[i]))
            assert int(got[i]) == batch_code(want), (int(a[i]), int(b[i]))


class TestNdMaxAcrossFormats:
    """The nd-plane entry points: batch and serial plans agree with
    float ground truth in every format, first index winning ties."""

    FORMATS = ("binary64", "log", "posit(64,9)", "lns(12,50)")

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_max_and_argmax_match_float_ground_truth(self, fmt):
        rng = np.random.default_rng(11)
        vals = rng.uniform(0.1, 1.0, size=(5, 6))
        for plan in (ExecPlan(), ExecPlan.serial()):
            x = nd.asarray(vals, fmt, plan=plan)
            idx = x.argmax(axis=1)
            top = x.max(axis=1).to_floats()
            decoded = x.to_floats()
            for r in range(vals.shape[0]):
                want = int(np.argmax(decoded[r]))
                assert int(idx[r]) == want, (fmt, plan.batch)
                assert top[r] == decoded[r, want]

    def test_tie_break_first_index_wins(self):
        x = nd.asarray(np.array([[0.5, 0.25, 0.5, 0.5]]), "binary64")
        assert int(x.argmax(axis=1)[0]) == 0
        y = nd.maximum(x[:, 0], x[:, 2])
        assert y.to_floats()[0] == 0.5


class TestSemiringAlgebra:
    """The Semiring objects themselves: registry, resolution, and the
    contraction identities the kernels rely on."""

    def test_registry_contents(self):
        assert set(SEMIRINGS) == {"sum-product", "max-product",
                                  "log-sum-exp", "pairhmm-max"}
        assert resolve_semiring(None) is SUM_PRODUCT
        assert resolve_semiring("max-product") is MAX_PRODUCT
        assert resolve_semiring(PAIRHMM_MAX) is PAIRHMM_MAX
        with pytest.raises(ValueError, match="unknown semiring"):
            resolve_semiring("tropical")

    def test_invalid_ops_rejected(self):
        from repro.workloads.semiring import Semiring
        with pytest.raises(ValueError):
            Semiring("bad", "min", "add", "nope")

    @pytest.mark.parametrize("fmt", ("binary64", "log"))
    def test_contract_identities(self, fmt):
        rng = np.random.default_rng(3)
        x = nd.asarray(rng.uniform(0.1, 1.0, size=(2, 4)), fmt)
        y = nd.asarray(rng.uniform(0.1, 1.0, size=(2, 4)), fmt)
        sum_c = SUM_PRODUCT.contract(x, y, axis=1)
        assert np.array_equal(np.asarray(sum_c._data),
                              np.asarray(nd.dot(x, y, axis=1)._data))
        max_c = MAX_PRODUCT.contract(x, y, axis=1)
        assert np.array_equal(np.asarray(max_c._data),
                              np.asarray((x * y).max(axis=1)._data))
        # The hybrid: max inside (plus), sum outside (reduce).
        assert PAIRHMM_MAX.plus_op == "max"
        assert PAIRHMM_MAX.total_op == "add"
        hybrid = PAIRHMM_MAX.reduce(PAIRHMM_MAX.plus(x, y), axis=1)
        direct = nd.maximum(x, y).sum(axis=1)
        assert np.array_equal(np.asarray(hybrid._data),
                              np.asarray(direct._data))
