"""Public-API surface snapshot: the ``__all__`` of each public package
must match the checked-in manifest (``tests/api_surface.json``), so any
future API churn shows up as an explicit, reviewable diff.

To accept an intentional change, regenerate the manifest::

    PYTHONPATH=src python tests/test_api_surface.py --regen
"""

import importlib
import json
import os

import pytest

MANIFEST_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "api_surface.json")

#: The packages whose surfaces are pinned.
MODULES = ("repro", "repro.arith", "repro.engine", "repro.nd",
           "repro.apps", "repro.service", "repro.workloads")


def load_manifest() -> dict:
    with open(MANIFEST_PATH) as f:
        return json.load(f)


def current_surface(module_name: str) -> list:
    return sorted(importlib.import_module(module_name).__all__)


def test_manifest_covers_exactly_the_pinned_modules():
    assert sorted(load_manifest()) == sorted(MODULES)


@pytest.mark.parametrize("module_name", MODULES)
def test_surface_matches_manifest(module_name):
    expected = load_manifest()[module_name]
    actual = current_surface(module_name)
    added = sorted(set(actual) - set(expected))
    removed = sorted(set(expected) - set(actual))
    assert actual == expected, (
        f"{module_name}.__all__ drifted from tests/api_surface.json "
        f"(added: {added or 'none'}; removed: {removed or 'none'}). "
        f"If intentional, regenerate with: "
        f"PYTHONPATH=src python tests/test_api_surface.py --regen")


@pytest.mark.parametrize("module_name", MODULES)
def test_every_name_resolves(module_name):
    """__all__ must not advertise names that don't exist (import-star
    correctness; complements the F822/PLE0604 lint)."""
    mod = importlib.import_module(module_name)
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None or name in vars(mod), \
            f"{module_name}.{name} is in __all__ but unresolvable"


def _regen():
    manifest = {m: current_surface(m) for m in MODULES}
    with open(MANIFEST_PATH, "w") as f:
        json.dump(manifest, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {MANIFEST_PATH}")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
