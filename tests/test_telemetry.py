"""repro.telemetry: the collector, the zero-cost disabled path, and
counter *exactness* against ground truth computed outside the
instrumented code.

The event tests are the strong form of the observability contract: an
exhaustive 8-bit posit sweep (every pattern pair, all three ops)
asserts the batch engine's NaR / saturation / flush event tallies
equal counts derived independently from :class:`PositEnv` decode and
exact rational arithmetic — not from the batch code being tested.
"""

import json
import pickle
from fractions import Fraction

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import Collector


# ----------------------------------------------------------------------
# The disabled fast path
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_no_collector_by_default(self):
        assert telemetry.current() is None

    def test_span_returns_shared_noop_singleton(self):
        s1 = telemetry.span("a")
        s2 = telemetry.span("b")
        assert s1 is s2  # no per-call allocation while disabled
        with s1:
            pass  # usable as a context manager

    def test_count_and_event_are_noops(self):
        telemetry.count("x", 5)
        telemetry.event("y")
        with telemetry.collect() as t:
            pass
        assert t.counters == {} and t.events == {}

    def test_active_span_is_not_the_singleton(self):
        noop = telemetry.span("a")
        with telemetry.collect():
            assert telemetry.span("a") is not noop


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
class TestCollectScope:
    def test_scope_activates_and_deactivates(self):
        with telemetry.collect() as t:
            assert telemetry.current() is t
            telemetry.count("n", 2)
        assert telemetry.current() is None
        assert t.counters == {"n": 2}

    def test_nested_scopes_route_to_innermost(self):
        with telemetry.collect() as outer:
            telemetry.count("n")
            with telemetry.collect() as inner:
                telemetry.count("n", 10)
            telemetry.count("n")
        assert outer.counters == {"n": 2}
        assert inner.counters == {"n": 10}

    def test_reentering_a_collector_accumulates(self):
        c = Collector()
        with telemetry.collect(collector=c):
            telemetry.count("n")
        with telemetry.collect(collector=c):
            telemetry.count("n")
        assert c.counters == {"n": 2}

    def test_trace_and_collector_are_exclusive(self):
        with pytest.raises(ValueError):
            telemetry.collect(trace="x.jsonl", collector=Collector())


# ----------------------------------------------------------------------
# The Collector: spans, merge, pickle, export
# ----------------------------------------------------------------------
class TestCollector:
    def test_span_aggregation(self):
        with telemetry.collect() as t:
            for _ in range(3):
                with telemetry.span("work"):
                    pass
        count, total, lo, hi = t.spans["work"]
        assert count == 3
        assert 0 < lo <= total / 3 <= hi <= total

    def test_spans_nest(self):
        with telemetry.collect() as t:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        assert t.spans["outer"][0] == 1 and t.spans["inner"][0] == 1
        assert t.spans["outer"][1] >= t.spans["inner"][1]

    def test_merge_sums_and_combines(self):
        a, b = Collector(), Collector()
        a.count("n", 1)
        b.count("n", 2)
        b.count("only_b")
        a.event("e", 3)
        b.event("e", 4)
        a.spans["s"] = [2, 1.0, 0.4, 0.6]
        b.spans["s"] = [1, 0.2, 0.2, 0.2]
        b.spans["t"] = [1, 0.5, 0.5, 0.5]
        a.merge(b)
        assert a.counters == {"n": 3, "only_b": 1}
        assert a.events == {"e": 7}
        assert a.spans["s"] == [3, 1.2, 0.2, 0.6]
        assert a.spans["t"] == [1, 0.5, 0.5, 0.5]

    def test_pickle_round_trip_drops_sink(self, tmp_path):
        with telemetry.collect(trace=str(tmp_path / "t.jsonl")) as t:
            telemetry.count("n", 7)
            telemetry.event("e")
            with telemetry.span("s"):
                pass
            clone = pickle.loads(pickle.dumps(t))
        assert clone.counters == t.counters
        assert clone.events == t.events
        assert clone.spans == t.spans
        assert clone._sink is None

    def test_to_json_shape(self):
        with telemetry.collect() as t:
            telemetry.count("c", 2)
            telemetry.event("e")
            with telemetry.span("s"):
                pass
        payload = t.to_json()
        assert payload["counters"] == {"c": 2}
        assert payload["events"] == {"e": 1}
        span = payload["spans"]["s"]
        assert set(span) == {"count", "total_s", "min_s", "max_s"}
        json.dumps(payload)  # must be serializable as-is

    def test_report_table_and_empty_fallback(self):
        assert Collector().report() == "(nothing collected)"
        with telemetry.collect() as t:
            telemetry.count("nd.mul.log.batch", 42)
            with telemetry.span("kernel.forward_batch"):
                pass
        text = t.report()
        assert "nd.mul.log.batch" in text and "42" in text
        assert "kernel.forward_batch" in text


class TestTrace:
    def test_jsonl_span_lines_and_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.collect(trace=str(path)) as t:
            telemetry.count("n", 5)
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [rec for rec in lines if rec["type"] == "span"]
        # Inner closes first, at nesting depth 1.
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("inner", 1), ("outer", 0)]
        for s in spans:
            assert s["start_s"] >= 0 and s["duration_s"] >= 0
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["counters"] == t.to_json()["counters"] == {"n": 5}


# ----------------------------------------------------------------------
# Event exactness: exhaustive 8-bit posit sweep vs ground truth
# ----------------------------------------------------------------------
class TestPositEventExactness:
    """NaR / saturation / flush tallies over *every* posit(8,1) pattern
    pair must equal counts derived from PositEnv decode plus exact
    rational arithmetic (the batch engine is not consulted)."""

    @pytest.fixture(scope="class")
    def env(self):
        from repro.formats.posit import FLUSH, PositEnv
        return PositEnv(8, 1, underflow=FLUSH)

    @pytest.fixture(scope="class")
    def values(self, env):
        """Exact value per pattern; None marks NaR."""
        from repro.formats.posit import NAR, ZERO
        vals = {}
        for p in range(256):
            d = env.decode(p)
            if d is ZERO:
                vals[p] = Fraction(0)
            elif d is NAR:
                vals[p] = None
            else:
                m = -d.mantissa if d.sign else d.mantissa
                vals[p] = Fraction(m) * Fraction(2) ** d.exponent
        return vals

    def _ground_truth(self, env, values, op):
        """(nar, saturate, flush) counts over all 256x256 pairs.

        NaR comes from the input patterns alone; saturation is the
        exact comparison ``|exact| > maxpos``; flush consults the
        scalar environment's rounding only on the sub-``minpos``
        magnitudes (rounding is monotone, so no other lane can round
        to zero).  Zero-operand lanes pass through without events.
        """
        two_max = Fraction(2) ** env.max_scale
        minval = Fraction(2) ** env.min_scale
        scalar_op = {"add": env.add, "mul": env.mul, "div": env.div}[op]
        nar = sat = flush = 0
        for a in range(256):
            va = values[a]
            for b in range(256):
                vb = values[b]
                if va is None or vb is None or (op == "div" and vb == 0):
                    nar += 1
                    continue
                if op == "add":
                    if va == 0 or vb == 0:
                        continue
                    exact = va + vb
                    if exact == 0:  # cancellation: exact-zero result
                        continue
                elif op == "mul":
                    if va == 0 or vb == 0:
                        continue
                    exact = va * vb
                else:
                    if va == 0:
                        continue
                    exact = va / vb
                mag = abs(exact)
                if mag > two_max:
                    sat += 1
                elif mag < minval and scalar_op(a, b) == 0:
                    flush += 1
        return nar, sat, flush

    @pytest.mark.parametrize("op", ["add", "mul", "div"])
    def test_events_match_ground_truth(self, env, values, op):
        from repro.engine.posit_batch import BatchPosit
        bp = BatchPosit(env)
        a = np.repeat(np.arange(256, dtype=np.uint64), 256)
        b = np.tile(np.arange(256, dtype=np.uint64), 256)
        plain = getattr(bp, op)(a, b)
        with telemetry.collect() as t:
            collected = getattr(bp, op)(a, b)
        # Observing must not change the computation.
        assert np.array_equal(plain, collected)
        got = (t.events.get("posit.nar", 0),
               t.events.get("posit.saturate", 0),
               t.events.get("posit.flush", 0))
        assert got == self._ground_truth(env, values, op)


# ----------------------------------------------------------------------
# LNS table / memo counters
# ----------------------------------------------------------------------
class TestLNSCounters:
    @pytest.fixture()
    def operands(self):
        from repro.formats.lns import LNSEnv
        env = LNSEnv(6, 8)
        rng = np.random.default_rng(3)
        hi = rng.integers(env.min_code // 2, env.max_code, 500,
                          dtype=np.int64)
        gap = rng.integers(1, 2000, 500, dtype=np.int64)
        lo = np.maximum(hi - gap, np.int64(env.min_code))
        return env, hi, lo

    def _interior(self, bb, hi, lo):
        """How many lanes take the exact sb path (nonzero gap above
        the certified rounds-to-zero floor)."""
        d = np.minimum(hi, lo) - np.maximum(hi, lo)
        return int(((d < 0) & (d > bb._sb_floor)).sum())

    def test_table_mode_counts_build_then_hits(self, operands):
        from repro.arith.backends import LNSBackend
        from repro.engine.lns_batch import BatchLNS
        env, hi, lo = operands
        bb = BatchLNS(scalar=LNSBackend(env), sb_table=True)
        n_int = self._interior(bb, hi, lo)
        with telemetry.collect() as first:
            bb.add(hi, lo)
        with telemetry.collect() as second:
            bb.add(hi, lo)
        # Lazy build fires exactly once, on the first interior gap.
        assert first.counters["lns.sb.table_build"] == -int(bb._sb_floor) - 1
        assert "lns.sb.table_build" not in second.counters
        assert first.counters["lns.sb.table_hit"] == n_int
        assert second.counters["lns.sb.table_hit"] == n_int

    def test_memo_mode_hit_miss_partition(self, operands):
        from repro.arith.backends import LNSBackend
        from repro.engine.lns_batch import BatchLNS
        env, hi, lo = operands
        bb = BatchLNS(scalar=LNSBackend(env), sb_table=False)
        n_int = self._interior(bb, hi, lo)
        with telemetry.collect() as first:
            bb.add(hi, lo)
        with telemetry.collect() as second:
            bb.add(hi, lo)
        # Every interior lane is either a hit or a miss ...
        assert (first.counters["lns.sb.memo_hit"]
                + first.counters["lns.sb.memo_miss"]) == n_int
        assert first.counters["lns.sb.memo_miss"] > 0
        # ... and a repeat of the same call is all hits.
        assert second.counters["lns.sb.memo_hit"] == n_int
        assert second.counters.get("lns.sb.memo_miss", 0) == 0

    def test_table_and_memo_agree(self, operands):
        from repro.arith.backends import LNSBackend
        from repro.engine.lns_batch import BatchLNS
        env, hi, lo = operands
        table = BatchLNS(scalar=LNSBackend(env), sb_table=True)
        memo = BatchLNS(scalar=LNSBackend(env), sb_table=False)
        assert np.array_equal(table.add(hi, lo), memo.add(hi, lo))


# ----------------------------------------------------------------------
# Result-cache counters
# ----------------------------------------------------------------------
class TestCacheCounters:
    def test_miss_store_hit_and_bytes(self, tmp_path):
        from repro.experiments import cache
        directory = str(tmp_path)
        text = "rendered report"
        with telemetry.collect() as t:
            assert cache.load("figx", {"p": 1}, cache_dir=directory) is None
            cache.store("figx", {"p": 1}, text, cache_dir=directory)
            entry = cache.load("figx", {"p": 1}, cache_dir=directory)
        assert entry["text"] == text
        assert t.counters == {
            "cache.miss": 1,
            "cache.store": 1,
            "cache.store_bytes": len(text),
            "cache.hit": 1,
            "cache.hit_bytes": len(text),
        }


# ----------------------------------------------------------------------
# nd dispatch counters
# ----------------------------------------------------------------------
class TestNdCounters:
    def test_batch_binary_op_counts_elements(self):
        from repro import nd
        a = nd.asarray([0.1, 0.2, 0.3], format="log")
        b = nd.asarray([0.4, 0.5, 0.6], format="log")
        with telemetry.collect() as t:
            c = a * b
            c.sum()
        assert t.counters["nd.mul.log.batch"] == 3
        assert t.counters["nd.sum.log.batch"] == 1

    def test_astype_counts_conversions(self):
        from repro import nd
        a = nd.asarray([0.1, 0.2, 0.3], format="log")
        with telemetry.collect() as t:
            a.astype("binary64")
        assert t.counters["nd.astype.log->binary64"] == 3


# ----------------------------------------------------------------------
# Fig3-style sweep: counters sum to the exact number of measured pairs,
# across worker processes, into one JSONL trace.
# ----------------------------------------------------------------------
class TestSweepCounterExactness:
    def test_parallel_sweep_counts_every_pair(self, tmp_path):
        from repro.arith import Binary64Backend, LogSpaceBackend
        from repro.core.sweep import FIG3_BINS, binary64_skipped, \
            plan_chunks
        from repro.engine.runner import run_sweep_parallel

        bins = (FIG3_BINS[0], FIG3_BINS[-1])  # one deep, one shallow
        per_bin, chunk_size = 6, 4
        backends = {b.name: b for b in (Binary64Backend(),
                                        LogSpaceBackend())}
        # The deep bin must actually exercise the skip rule.
        assert binary64_skipped("binary64", bins[0])
        path = tmp_path / "sweep.jsonl"
        with telemetry.collect(trace=str(path)) as t:
            run_sweep_parallel("add", backends, per_bin=per_bin,
                               bins=bins, n_workers=2,
                               chunk_size=chunk_size)
        for fmt in backends:
            expected = per_bin * sum(
                1 for b in bins if not binary64_skipped(fmt, b))
            measured = sum(
                n for key, n in t.counters.items()
                if key.startswith(f"sweep.add.{fmt}."))
            assert measured == expected, fmt
        # Per-chunk worker spans survive the process boundary.
        n_chunks = len(plan_chunks("add", bins, per_bin, 0, chunk_size))
        assert t.spans["runner.chunk"][0] == n_chunks
        assert t.spans["runner.sweep"][0] == 1
        # The trace summary carries the merged aggregate.
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["counters"] == t.to_json()["counters"]
        assert summary["spans"]["runner.chunk"]["count"] == n_chunks

    def test_inline_matches_parallel_counts(self):
        from repro.arith import LogSpaceBackend
        from repro.core.sweep import FIG3_BINS
        from repro.engine.runner import run_sweep_parallel

        bins = (FIG3_BINS[-1],)
        backends = {"log": LogSpaceBackend()}
        with telemetry.collect() as inline:
            run_sweep_parallel("mul", backends, per_bin=5, bins=bins,
                               n_workers=0, chunk_size=3)
        with telemetry.collect() as parallel:
            run_sweep_parallel("mul", backends, per_bin=5, bins=bins,
                               n_workers=2, chunk_size=3)
        assert inline.counters == parallel.counters


# ----------------------------------------------------------------------
# Asyncio isolation (the service's per-request scopes depend on this)
# ----------------------------------------------------------------------
class TestAsyncioIsolation:
    """collect() scopes are contextvar-backed, so concurrent asyncio
    tasks with their own scopes must never cross-count, and tasks
    sharing an inherited collector must keep correct span depths."""

    def test_concurrent_scopes_do_not_cross_count(self):
        import asyncio

        async def worker(name, n):
            with telemetry.collect() as c:
                for _ in range(n):
                    telemetry.count(name)
                    await asyncio.sleep(0)  # force interleaving
                    with telemetry.span(f"work.{name}"):
                        await asyncio.sleep(0)
            return c

        async def main():
            return await asyncio.gather(worker("a", 7), worker("b", 11),
                                        worker("c", 3))

        a, b, c = asyncio.run(main())
        assert a.counters == {"a": 7} and a.spans["work.a"][0] == 7
        assert b.counters == {"b": 11} and b.spans["work.b"][0] == 11
        assert c.counters == {"c": 3} and c.spans["work.c"][0] == 3
        assert "work.b" not in a.spans and "work.a" not in b.spans

    def test_create_task_inherits_parent_collector(self):
        import asyncio

        async def child():
            telemetry.count("from_child")

        async def main():
            with telemetry.collect() as c:
                await asyncio.create_task(child())
            return c

        collector = asyncio.run(main())
        assert collector.counters == {"from_child": 1}

    def test_interleaved_tasks_keep_own_span_depths(self, tmp_path):
        """Regression: with a collector-owned stack, task B closing a
        span would pop task A's frame and corrupt both depths.  Depth
        is per-execution-context now."""
        import asyncio

        path = tmp_path / "trace.jsonl"

        async def nested(name, release, proceed):
            with telemetry.span(f"{name}.outer"):
                release.set()
                await proceed.wait()
                with telemetry.span(f"{name}.inner"):
                    await asyncio.sleep(0)

        async def main():
            with telemetry.collect(trace=str(path)):
                a_up = asyncio.Event()
                b_up = asyncio.Event()
                go = asyncio.Event()
                ta = asyncio.create_task(nested("a", a_up, go))
                tb = asyncio.create_task(nested("b", b_up, go))
                await a_up.wait()
                await b_up.wait()  # both outers open, interleaved
                go.set()
                await asyncio.gather(ta, tb)

        asyncio.run(main())
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        depths = {r["name"]: r["depth"] for r in records
                  if r["type"] == "span"}
        assert depths == {"a.outer": 0, "a.inner": 1,
                          "b.outer": 0, "b.inner": 1}

    def test_executor_thread_scope_merges_back(self):
        """The service's executor pattern: a thread enters its own
        collect(collector=child) scope (run_in_executor does not
        propagate context), and the child merges into the parent."""
        import asyncio

        from repro.telemetry import Collector

        async def main():
            loop = asyncio.get_running_loop()
            child = Collector()

            def in_thread():
                with telemetry.collect(collector=child):
                    telemetry.count("thread_work", 4)
                    with telemetry.span("thread.span"):
                        pass

            with telemetry.collect() as parent:
                await loop.run_in_executor(None, in_thread)
                parent.merge(child)
            return parent

        parent = asyncio.run(main())
        assert parent.counters == {"thread_work": 4}
        assert parent.spans["thread.span"][0] == 1
