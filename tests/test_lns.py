"""Tests for the LNS format: codec, arithmetic, flat-precision property,
and the table-size impracticality numbers."""

import math

import pytest

from repro.bigfloat import BigFloat, log10_relative_error, relative_error
from repro.formats.lns import LNS_ZERO, LNSEnv, lns64_for_range


@pytest.fixture(scope="module")
def lns():
    return LNSEnv(12, 50)  # 64-bit: covers 2^+-2048 with 50 frac bits


class TestCodec:
    def test_zero(self, lns):
        assert lns.encode_bigfloat(BigFloat.zero()) == LNS_ZERO
        assert lns.decode_bigfloat(LNS_ZERO).is_zero()

    def test_one_is_code_zero(self, lns):
        assert lns.encode_bigfloat(BigFloat.from_int(1)) == 0

    def test_powers_of_two_exact(self, lns):
        for k in (-2000, -37, -1, 1, 100):
            code = lns.encode_bigfloat(BigFloat.exp2(k))
            assert code == k << lns.frac_bits
            assert lns.decode_bigfloat(code) == BigFloat.exp2(k)

    def test_roundtrip_error_within_bound(self, lns):
        for v in (0.3, 0.7, 1e-300, 12345.678):
            x = BigFloat.from_float(v)
            back = lns.decode_bigfloat(lns.encode_bigfloat(x))
            err = relative_error(x, back).to_float()
            assert err <= lns.per_op_relative_error_bound()

    def test_negative_rejected(self, lns):
        with pytest.raises(ValueError):
            lns.encode_bigfloat(BigFloat.from_int(-1))

    def test_saturation(self, lns):
        assert lns.encode_bigfloat(BigFloat.exp2(10_000)) == lns.max_code
        assert lns.encode_bigfloat(BigFloat.exp2(-10_000)) == lns.min_code

    def test_validation(self):
        with pytest.raises(ValueError):
            LNSEnv(1, 10)
        with pytest.raises(ValueError):
            LNSEnv(10, 0)


class TestArithmetic:
    def test_mul_is_exact_code_add(self, lns):
        a = lns.from_float(0.5)
        b = lns.from_float(0.25)
        assert lns.mul(a, b) == lns.from_float(0.125)

    def test_mul_zero(self, lns):
        assert lns.mul(LNS_ZERO, lns.from_float(0.5)) == LNS_ZERO

    def test_mul_never_rounds(self, lns):
        """The LNS selling point: multiplication error is exactly zero
        (when in range) because codes add exactly."""
        a = lns.encode_bigfloat(BigFloat.from_float(0.3))
        b = lns.encode_bigfloat(BigFloat.from_float(0.7))
        prod = lns.mul(a, b)
        exact = lns.decode_bigfloat(a).mul(lns.decode_bigfloat(b), 256)
        assert relative_error(exact, lns.decode_bigfloat(prod)).to_float() \
            < 2 ** -200

    def test_add_zero_identity(self, lns):
        a = lns.from_float(0.5)
        assert lns.add(a, LNS_ZERO) == a
        assert lns.add(LNS_ZERO, a) == a

    def test_add_equal_values(self, lns):
        # x + x = 2x: sb(0) = 1 exactly.
        a = lns.from_float(0.5)
        assert lns.add(a, a) == lns.from_float(1.0)

    def test_add_accuracy_bound(self, lns):
        a = BigFloat.from_float(0.3)
        b = BigFloat.from_float(0.456)
        got = lns.decode_bigfloat(lns.add(lns.encode_bigfloat(a),
                                          lns.encode_bigfloat(b)))
        exact = a.add(b, 256)
        assert relative_error(exact, got).to_float() <= \
            3 * lns.per_op_relative_error_bound()

    def test_add_commutes(self, lns):
        a, b = lns.from_float(0.12), lns.from_float(0.00034)
        assert lns.add(a, b) == lns.add(b, a)


class TestFlatPrecision:
    def test_error_flat_across_magnitudes(self, lns):
        """Fixed-point logs give constant relative error at 2^-10 and at
        2^-1800 alike — the property float-log lacks."""
        errs = []
        for scale in (-10, -500, -1800):
            x = BigFloat(0, (1 << 60) + 987_654_321, scale - 60)
            y = BigFloat(0, (1 << 60) + 123_456_789, scale - 61)
            got = lns.decode_bigfloat(lns.add(lns.encode_bigfloat(x),
                                              lns.encode_bigfloat(y)))
            errs.append(log10_relative_error(x.add(y, 256), got))
        assert max(errs) - min(errs) < 1.0  # flat within a decade

    def test_flat_but_limited_range(self, lns):
        """...but the range is hard-limited: 2^-2049 saturates."""
        assert lns.smallest_positive_scale() == -2_048
        deep = lns.encode_bigfloat(BigFloat.exp2(-3_000))
        assert deep == lns.min_code


class TestImpracticality:
    def test_table_size_explodes(self):
        """The paper: table optimizations work for <=16-bit LNS, not 64.
        A 16-bit-class LNS table fits in KBs; the 64-bit one needs
        zettabytes."""
        small = LNSEnv(5, 9)  # 16-bit class
        big = LNSEnv(12, 50)  # 64-bit class
        assert small.sb_table_bytes() < 64 * 1024
        assert big.sb_table_bytes() > 1e17  # hundreds of petabytes

    def test_range_precision_tradeoff_vs_posit(self):
        """To cover LoFreq's 2^-434,916 range, a 64-bit LNS keeps only
        42 fraction bits everywhere — posit(64,18) offers 43 at the
        deepest values and more elsewhere."""
        env = lns64_for_range(-434_916)
        assert env.smallest_positive_scale() <= -434_916
        assert env.frac_bits <= 42

    def test_lns64_for_range_validation(self):
        with pytest.raises(ValueError):
            lns64_for_range(-(2 ** 61))

    def test_per_op_bound_value(self, lns):
        assert math.isclose(lns.per_op_relative_error_bound(),
                            math.log(2) * 2.0 ** -51, rel_tol=1e-12)
