"""Cross-verification of the hardware-style posit datapath against the
exact-arithmetic reference engine — the software analogue of RTL
verification against a golden model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import PositEnv
from repro.formats.posit_datapath import PositDatapath, UnpackedPosit


@pytest.fixture(scope="module", params=[(8, 0), (8, 1), (8, 2), (10, 1)])
def engines(request):
    nbits, es = request.param
    env = PositEnv(nbits, es)
    return env, PositDatapath(env)


class TestExhaustiveEquivalence:
    def test_add_exhaustive(self, engines):
        """Every (a, b) pair: datapath add == reference add, bit for bit."""
        env, dp = engines
        for a in range(1 << env.nbits):
            for b in range(0, 1 << env.nbits, 3):  # stride keeps runtime sane
                assert dp.add(a, b) == env.add(a, b), (hex(a), hex(b))

    def test_mul_exhaustive(self, engines):
        env, dp = engines
        for a in range(1 << env.nbits):
            for b in range(0, 1 << env.nbits, 3):
                assert dp.mul(a, b) == env.mul(a, b), (hex(a), hex(b))


class TestRandomWidePosits:
    @pytest.mark.parametrize("es", [1, 2])
    def test_posit16_random(self, es):
        env = PositEnv(16, es)
        dp = PositDatapath(env)
        rng = random.Random(es)
        for _ in range(3_000):
            a = rng.randrange(1 << 16)
            b = rng.randrange(1 << 16)
            assert dp.add(a, b) == env.add(a, b), (hex(a), hex(b))
            assert dp.mul(a, b) == env.mul(a, b), (hex(a), hex(b))

    @pytest.mark.parametrize("es", [9, 12, 18])
    def test_posit64_random(self, es):
        env = PositEnv(64, es)
        dp = PositDatapath(env)
        rng = random.Random(es * 7)
        for _ in range(400):
            a = rng.randrange(1 << 64)
            b = rng.randrange(1 << 64)
            assert dp.add(a, b) == env.add(a, b), (hex(a), hex(b))
            assert dp.mul(a, b) == env.mul(a, b), (hex(a), hex(b))


class TestUnpack:
    def test_unpack_zero(self):
        env = PositEnv(16, 1)
        assert PositDatapath(env).unpack(0).is_zero() if hasattr(
            UnpackedPosit, "is_zero") else PositDatapath(env).unpack(0).significand == 0

    def test_unpack_nar_raises(self):
        env = PositEnv(16, 1)
        with pytest.raises(ValueError):
            PositDatapath(env).unpack(env.nar)

    def test_unpack_fixed_width(self):
        """Every nonzero unpacked significand occupies the full register
        (implicit 1 at the top) — the fixed-width register invariant."""
        env = PositEnv(8, 1)
        dp = PositDatapath(env)
        for bits in range(1, 1 << 8):
            if bits == env.nar:
                continue
            up = dp.unpack(bits)
            assert up.significand.bit_length() == dp.frac_width + 1

    def test_register_widths_document_cost(self):
        """The datapath widths behind Table II's posit unit costs."""
        dp = PositDatapath(PositEnv(64, 12))
        assert dp.frac_width == 49  # 50-bit significand register
        assert dp.max_shift == 54  # full-span aligner


class TestSpecials:
    def test_nar_bypass(self, engines):
        env, dp = engines
        one = env.from_float(1.0)
        assert dp.add(env.nar, one) == env.nar
        assert dp.mul(one, env.nar) == env.nar

    def test_zero_bypass(self, engines):
        env, dp = engines
        a = env.from_float(0.5)
        assert dp.add(a, 0) == a
        assert dp.add(0, a) == a
        assert dp.mul(a, 0) == 0

    def test_exact_cancellation(self, engines):
        env, dp = engines
        a = env.from_float(0.75)
        assert dp.add(a, env.neg(a)) == 0


@settings(max_examples=300, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_datapath_add_matches_reference_hypothesis(a, b):
    env = PositEnv(16, 1)
    dp = PositDatapath(env)
    assert dp.add(a, b) == env.add(a, b)


@settings(max_examples=300, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_datapath_mul_matches_reference_hypothesis(a, b):
    env = PositEnv(16, 1)
    dp = PositDatapath(env)
    assert dp.mul(a, b) == env.mul(a, b)
