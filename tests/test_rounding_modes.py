"""Complete coverage of the integer rounding primitives (all five modes)
and the sticky compressor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import RNA, RNE, RTN, RTP, RTZ, round_to_precision, shift_right_round
from repro.bigfloat.rounding import sticky_compress


class TestShiftRightRound:
    def test_exact_no_rounding(self):
        assert shift_right_round(0b1000, 3) == 1

    def test_negative_shift_is_exact_left(self):
        assert shift_right_round(3, -2) == 12

    def test_rne_below_half(self):
        assert shift_right_round(0b1001, 2) == 0b10  # .01 -> down

    def test_rne_above_half(self):
        assert shift_right_round(0b1011, 2) == 0b11  # .11 -> up

    def test_rne_tie_to_even(self):
        assert shift_right_round(0b1010, 2) == 0b10  # tie, keep even
        assert shift_right_round(0b1110, 2) == 0b100  # tie, round to even

    def test_rna_tie_away(self):
        assert shift_right_round(0b1010, 2, mode=RNA) == 0b11

    def test_rtz_truncates(self):
        assert shift_right_round(0b1111, 2, mode=RTZ) == 0b11

    def test_rtp_direction_depends_on_sign(self):
        assert shift_right_round(0b1001, 2, sign=0, mode=RTP) == 0b11
        assert shift_right_round(0b1001, 2, sign=1, mode=RTP) == 0b10

    def test_rtn_direction_depends_on_sign(self):
        assert shift_right_round(0b1001, 2, sign=0, mode=RTN) == 0b10
        assert shift_right_round(0b1001, 2, sign=1, mode=RTN) == 0b11

    def test_rejects_negative_mantissa(self):
        with pytest.raises(ValueError):
            shift_right_round(-1, 1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            shift_right_round(1, 1, mode="stochastic")


class TestRoundToPrecision:
    def test_zero(self):
        assert round_to_precision(0, 5, 8) == (0, 0)

    def test_pads_up_to_precision(self):
        m, e = round_to_precision(0b101, 0, 6)
        assert m == 0b101000 and e == -3

    def test_carry_out(self):
        m, e = round_to_precision(0b1111, 0, 3)
        assert (m, e) == (0b100, 2)  # 15 -> 16

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            round_to_precision(1, 0, 0)

    @pytest.mark.parametrize("mode", [RNE, RNA, RTZ, RTP, RTN])
    def test_value_preserved_when_exact(self, mode):
        m, e = round_to_precision(0b1011, 0, 4, mode=mode)
        assert m * 2 ** e == 0b1011


class TestStickyCompress:
    def test_short_value_unchanged(self):
        assert sticky_compress(0b1011, 8) == (0b1011, 0)

    def test_compression_sets_sticky(self):
        value = (1 << 100) | 1  # a far-away low bit
        compressed, shift = sticky_compress(value, 16)
        assert shift == 100 - 16
        assert compressed & 1 == 1  # sticky captured

    def test_compression_exact_when_low_bits_zero(self):
        value = 1 << 100
        compressed, shift = sticky_compress(value, 16)
        assert compressed == 1 << 16
        assert shift == 84


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 128),
       st.integers(min_value=1, max_value=100))
def test_rounding_brackets_truth(mantissa, shift):
    """Every mode's result times 2**shift differs from the input by less
    than one output ulp (2**shift)."""
    for mode in (RNE, RNA, RTZ, RTP, RTN):
        out = shift_right_round(mantissa, shift, mode=mode)
        assert abs((out << shift) - mantissa) < (1 << shift)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=1, max_value=1 << 128),
       st.integers(min_value=1, max_value=100))
def test_mode_ordering(mantissa, shift):
    """RTZ <= RNE <= (RTZ + 1) and directed modes bracket everything."""
    down = shift_right_round(mantissa, shift, mode=RTZ)
    near = shift_right_round(mantissa, shift, mode=RNE)
    up = shift_right_round(mantissa, shift, sign=0, mode=RTP)
    assert down <= near <= up
    assert up - down <= 1
