"""Tests for decimal rendering of arbitrary-magnitude BigFloats."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import (
    BigFloat,
    decimal_exponent_estimate,
    log10_value,
    to_decimal_string,
)


class TestDecimalString:
    def test_zero(self):
        assert to_decimal_string(BigFloat.zero()) == "0"

    def test_one(self):
        assert to_decimal_string(BigFloat.from_int(1), 4) == "1.000e+0"

    def test_simple_values(self):
        # 12345 at 4 digits: the dropped half rounds up (half-up).
        assert to_decimal_string(BigFloat.from_int(12345), 4) == "1.235e+4"
        assert to_decimal_string(BigFloat.from_float(0.5), 3) == "5.00e-1"
        assert to_decimal_string(BigFloat.from_int(-250), 2) == "-2.5e+2"

    def test_rounding_half_up(self):
        assert to_decimal_string(BigFloat.from_int(12355), 3) == "1.24e+4"

    def test_rounding_carries_decade(self):
        assert to_decimal_string(BigFloat.from_int(9999), 3) == "1.00e+4"

    def test_single_digit(self):
        assert to_decimal_string(BigFloat.from_int(7), 1) == "7e+0"

    def test_invalid_digits(self):
        with pytest.raises(ValueError):
            to_decimal_string(BigFloat.from_int(1), 0)

    def test_extreme_magnitude(self):
        """The LoFreq headline number: 2^-434916 in decimal."""
        s = to_decimal_string(BigFloat.exp2(-434_916), 4)
        mantissa, exp = s.split("e")
        # log10(2^-434916) = -434916 * log10(2) ~ -130922.76, so the
        # value is ~1.73e-130923.
        assert int(exp) == -130_923
        assert 1.70 <= float(mantissa) <= 1.76

    def test_matches_python_formatting_in_range(self):
        for v in (3.14159, 6.02e23, 1.6e-19, 123.456):
            ours = to_decimal_string(BigFloat.from_float(v), 6)
            m, e = ours.split("e")
            assert math.isclose(float(m) * 10.0 ** int(e), v, rel_tol=1e-5)


class TestDecimalExponent:
    def test_estimate_near_truth(self):
        for k in (-434_916, -1074, -1, 0, 52, 100_000):
            x = BigFloat.exp2(k)
            est = decimal_exponent_estimate(x)
            true = k * math.log10(2)
            assert abs(est - true) <= 1.0

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            decimal_exponent_estimate(BigFloat.zero())


class TestLog10Value:
    def test_matches_math(self):
        assert math.isclose(log10_value(BigFloat.from_float(1000.0)), 3.0,
                            rel_tol=1e-12)

    def test_extreme(self):
        got = log10_value(BigFloat.exp2(-2_900_000))
        assert math.isclose(got, -2_900_000 * math.log10(2), rel_tol=1e-12)

    def test_negative_value_uses_abs(self):
        assert math.isclose(log10_value(BigFloat.from_int(-100)), 2.0,
                            rel_tol=1e-12)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            log10_value(BigFloat.zero())


@settings(max_examples=120, deadline=None)
@given(st.floats(min_value=1e-300, max_value=1e300))
def test_roundtrip_against_float(v):
    """For in-double-range values, parsing our string back recovers the
    value to the printed precision."""
    s = to_decimal_string(BigFloat.from_float(v), 12)
    m, e = s.split("e")
    back = float(m) * 10.0 ** int(e)
    assert math.isclose(back, v, rel_tol=1e-10)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-1_000_000, max_value=1_000_000))
def test_decimal_exponent_consistency(k):
    """The printed exponent must equal floor(log10(x)) (checked against
    the high-precision log10)."""
    if k == 0:
        return
    x = BigFloat.exp2(k)
    s = to_decimal_string(x, 6)
    printed_exp = int(s.split("e")[1])
    true_log10 = k * math.log10(2)
    assert printed_exp == math.floor(true_log10) or \
        abs(true_log10 - round(true_log10)) < 1e-9
