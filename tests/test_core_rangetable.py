"""Table I golden tests: the computed range table must reproduce the
paper's numbers exactly."""

import pytest

from repro.core import TABLE1_ES_VALUES, binary64_row, posit_row, table1_rows

#: (es, smallest positive scale, max fraction bits) straight from Table I.
PAPER_TABLE_I = {
    6: (-3_968, 55),
    9: (-31_744, 52),
    12: (-253_952, 49),
    15: (-2_031_616, 46),
    18: (-16_252_928, 43),
    21: (-130_023_424, 40),
}


def test_binary64_row():
    row = binary64_row()
    assert row.smallest_scale == -1_074
    assert row.max_fraction_bits == 52


@pytest.mark.parametrize("es", sorted(PAPER_TABLE_I))
def test_posit_rows_match_paper(es):
    row = posit_row(es)
    scale, frac = PAPER_TABLE_I[es]
    assert row.smallest_scale == scale
    assert row.max_fraction_bits == frac
    assert row.useed_log2 == 2 ** es


def test_table_has_all_rows():
    rows = table1_rows()
    assert len(rows) == 1 + len(TABLE1_ES_VALUES)
    assert rows[0].format == "binary64"


def test_render():
    rendered = posit_row(9).render()
    assert rendered["useed"] == "2^512"
    assert rendered["Smallest Positive"] == "2^-31744"
    assert rendered["Max Fraction Bits"] == 52
    assert binary64_row().render()["useed"] == "-"
