"""Randomized differential fuzzing across every registered format.

For each format the registry knows (auto-discovered — a newly
registered format is fuzzed with zero test changes) and each of the
four elementwise ops, three implementations of the same computation
are compared on seeded random operands:

* the **scalar backend** (the reference semantics);
* its certified **batch mirror** — must agree element-exactly (the
  engine's certification contract);
* the **BigFloat oracle**: round the operands into the format, compute
  the exact result of those *representable* operands at 512 bits,
  round once.  Backends that contract exact-compute + single-rounding
  (binary64, posit, LNS's ideal-table model, log-space mul/div — which
  are plain float add/sub of the correctly-rounded logs) must equal
  that single rounding bit-for-bit.  Log-space ``add``/``sub`` go
  through the *composite* float LSE of Equation (2) instead — ``add``
  is near-correctly-rounded (no cancellation in ``log1p(exp(d))``, so
  we assert within 2 ulps), while ``sub`` under cancellation has
  unbounded ulp error by design (the stable formula's ``1 - exp(d)``
  loses relative accuracy as ``d -> 0-``), so only its mirror,
  monotonicity, and domain-error behaviour are asserted.

Operands sweep a wide exponent range plus near-cancellation pairs (the
rounding-boundary stress).  Probability-domain formats (log-space,
LNS) only encode non-negative values and refuse subtractions that go
negative, so their operands are positive and ordered for ``sub`` —
discovered by probing the backend, not by name-matching, so the rule
extends to future formats.
"""

import math
import zlib

import numpy as np
import pytest

from repro.arith.registry import REGISTRY
from repro.bigfloat import BigFloat

OPS = ("add", "sub", "mul", "div")
TRIALS = 48
ORACLE_PREC = 512

#: Ops whose scalar backend does NOT contract a single rounding of the
#: exact result (log-space Equation-2 LSE, a composite float formula).
#: Maps to the asserted ulp bound in the log domain, or None when no
#: ulp bound holds (subtractive cancellation).
FAITHFUL_ONLY = {("log", "add"): 2, ("log", "sub"): None}


def _fuzz_formats():
    names = []
    for name in REGISTRY.names():
        scalar, batch = REGISTRY.create_pair(name)
        if batch is not None:
            names.append(name)
    return names


FORMATS = _fuzz_formats()


def test_oracle_has_no_mirror_and_is_excluded():
    """The fuzz targets are exactly the formats with a batch mirror;
    the BigFloat oracle itself has none (it *is* the reference)."""
    assert len(FORMATS) >= 6
    excluded = set(REGISTRY.names()) - set(FORMATS)
    assert all(name.startswith("bigfloat") for name in excluded)


def _signed(scalar) -> bool:
    """Probe whether the format encodes negative values."""
    try:
        scalar.from_bigfloat(BigFloat.from_float(-1.0))
        return True
    except ValueError:
        return False


def _operands(rng, signed: bool, op: str):
    """One operand pair: wide exponent spread, with a slice of
    near-cancellation pairs, ordered for probability-domain ``sub``."""
    def draw():
        mag = float(rng.uniform(1.0, 2.0))
        if signed:
            mag *= float(rng.choice([-1.0, 1.0]))
        return BigFloat.from_float(mag).mul_pow2(int(rng.integers(-60, 61)))

    x = draw()
    if rng.uniform() < 0.25:
        # Near-cancellation: y just below x in magnitude, so add/sub
        # land on rounding boundaries and sub shrinks catastrophically.
        y = x.mul(BigFloat.from_float(1.0 - 2.0 ** -int(
            rng.integers(1, 50))), ORACLE_PREC)
    else:
        y = draw()
    if not signed and op == "sub" and x.cmp(y) < 0:
        x, y = y, x
    return x, y


@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("fmt", FORMATS)
def test_scalar_batch_and_oracle_agree(fmt, op):
    scalar, batch = REGISTRY.create_pair(fmt)
    signed = _signed(scalar)
    # Seeded per (format, op) with a process-stable hash (``hash()``
    # is salted per interpreter run; crc32 is not).
    rng = np.random.default_rng(zlib.crc32(f"{fmt}:{op}".encode()))
    pairs = [_operands(rng, signed, op) for _ in range(TRIALS)]

    a_vals = [scalar.from_bigfloat(x) for x, _y in pairs]
    b_vals = [scalar.from_bigfloat(y) for _x, y in pairs]
    got = [getattr(scalar, op)(a, b) for a, b in zip(a_vals, b_vals)]

    # Leg 1: the batch mirror is element-exact against the scalar
    # backend — one vectorized call over the whole operand set.
    xa = batch.from_bigfloats([x for x, _y in pairs])
    yb = batch.from_bigfloats([y for _x, y in pairs])
    batched = getattr(batch, op)(xa, yb)
    for i in range(TRIALS):
        assert batch.item(batched, i) == got[i], (fmt, op, i, pairs[i])

    # Leg 2: the scalar backend against the BigFloat oracle — a single
    # rounding of the exact result of the representable (i.e.
    # already-rounded) operands, except for the FAITHFUL_ONLY ops.
    ulps = FAITHFUL_ONLY.get((fmt, op), 0)
    for i, (a, b) in enumerate(zip(a_vals, b_vals)):
        ra, rb = scalar.to_bigfloat(a), scalar.to_bigfloat(b)
        exact = getattr(ra, op)(rb, ORACLE_PREC)
        want = scalar.from_bigfloat(exact)
        if ulps is None:
            # No ulp bound — log-space sub under cancellation.  The
            # result must still never exceed the minuend (subtracting
            # a non-negative probability cannot grow it).
            assert got[i] <= a, (fmt, op, i, pairs[i])
        elif ulps == 0:
            assert got[i] == want, (fmt, op, i, pairs[i])
        else:
            assert (got[i] == want
                    or abs(got[i] - want) <= ulps * math.ulp(want)), (
                fmt, op, i, pairs[i], got[i], want)


@pytest.mark.parametrize("fmt", FORMATS)
def test_probability_domain_errors_are_mirrored(fmt):
    """Where the scalar refuses (negative-probability subtraction),
    the batch mirror must refuse too — silently returning a lane of
    garbage would break the certification contract."""
    scalar, batch = REGISTRY.create_pair(fmt)
    if _signed(scalar):
        pytest.skip("signed format: subtraction is total")
    lo, hi = BigFloat.from_float(1.0), BigFloat.from_float(1.5)
    with pytest.raises(ValueError):
        scalar.sub(scalar.from_bigfloat(lo), scalar.from_bigfloat(hi))
    with pytest.raises(ValueError):
        batch.sub(batch.from_bigfloats([lo]), batch.from_bigfloats([hi]))


@pytest.mark.parametrize("fmt", FORMATS)
def test_fuzz_is_deterministic(fmt):
    """Same seed stream, same operands — a failure reproduces."""
    scalar, _batch = REGISTRY.create_pair(fmt)
    signed = _signed(scalar)
    rng1 = np.random.default_rng(7)
    rng2 = np.random.default_rng(7)
    first = [_operands(rng1, signed, "add") for _ in range(8)]
    again = [_operands(rng2, signed, "add") for _ in range(8)]
    assert [(x.to_float(), y.to_float()) for x, y in first] == \
        [(x.to_float(), y.to_float()) for x, y in again]
