"""Unit tests for the BigFloat core (add/sub/mul/div/cmp/conversions)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, RTZ


def bf(x):
    return BigFloat.coerce(x)


class TestConstruction:
    def test_zero_is_canonical(self):
        z = BigFloat(0, 0, 12345)
        assert z.is_zero()
        assert z.exponent == 0 and z.sign == 0

    def test_negative_zero_collapses(self):
        z = BigFloat(1, 0, 3)
        assert z.sign == 0

    def test_trailing_zeros_stripped(self):
        x = BigFloat(0, 0b1000, 0)
        assert x.mantissa == 1 and x.exponent == 3

    def test_from_int(self):
        assert bf(10).mantissa == 5  # canonicalized: 10 = 5 * 2
        assert bf(10).exponent == 1
        assert bf(-7) == BigFloat(1, 7, 0)

    def test_from_float_exact(self):
        x = BigFloat.from_float(0.1)
        # 0.1 is not exactly 1/10 in binary64; conversion must be exact
        # w.r.t. the double, not the decimal.
        assert x.to_float() == 0.1

    def test_from_float_rejects_nan_inf(self):
        with pytest.raises(ValueError):
            BigFloat.from_float(float("nan"))
        with pytest.raises(ValueError):
            BigFloat.from_float(float("inf"))

    def test_from_ratio(self):
        x = BigFloat.from_ratio(1, 3, prec=64)
        assert abs(x.to_float() - 1 / 3) < 1e-18

    def test_exp2_extreme(self):
        x = BigFloat.exp2(-2_900_000)
        assert x.scale == -2_900_000

    def test_coerce_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            BigFloat.coerce(True)
        with pytest.raises(TypeError):
            BigFloat.coerce("1.5")

    def test_immutable(self):
        x = bf(1)
        with pytest.raises(AttributeError):
            x.mantissa = 2


class TestScale:
    def test_scale_of_one(self):
        assert bf(1).scale == 0

    def test_scale_of_half(self):
        assert BigFloat.from_float(0.5).scale == -1

    def test_scale_of_three(self):
        assert bf(3).scale == 1

    def test_scale_of_zero_raises(self):
        with pytest.raises(ValueError):
            BigFloat.zero().scale


class TestArithmetic:
    def test_add_exact_small(self):
        assert (bf(3) + bf(5)) == bf(8)

    def test_add_opposite_cancels(self):
        assert (bf(3) + bf(-3)).is_zero()

    def test_sub(self):
        assert (bf(10) - bf(4)) == bf(6)

    def test_mul(self):
        assert (bf(6) * bf(7)) == bf(42)

    def test_mul_signs(self):
        assert (bf(-2) * bf(3)) == bf(-6)
        assert (bf(-2) * bf(-3)) == bf(6)

    def test_div_exact(self):
        assert bf(12).div(bf(4)) == bf(3)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            bf(1).div(BigFloat.zero())

    def test_mul_pow2(self):
        assert bf(3).mul_pow2(10) == bf(3072)

    def test_add_far_apart_magnitudes_sticky(self):
        # 1 + 2**-600 must round to 1 at 256 bits, but compare > 1 exactly
        # is impossible post-rounding; instead check directed rounding.
        big = bf(1)
        tiny = BigFloat.exp2(-600)
        res = big.add(tiny, prec=256)
        assert res == bf(1)

    def test_add_far_apart_directed_rounding_sees_tiny(self):
        big = bf(1)
        tiny = BigFloat.exp2(-600)
        exact_sum = big.add(tiny, prec=700)  # wide enough to be exact
        assert exact_sum > bf(1)

    def test_sub_far_apart_magnitudes(self):
        # 1 - 2**-600 rounds to 1 at 53 bits (RNE), and the shortcut path
        # must not corrupt short mantissas (regression test).
        res = bf(1).sub(BigFloat.exp2(-600), prec=53)
        assert res == bf(1)

    def test_add_far_apart_short_mantissa_same_sign(self):
        res = bf(1).add(BigFloat.exp2(-600), prec=53)
        assert res == bf(1)

    def test_sqrt(self):
        assert bf(4).sqrt() == bf(2)
        x = bf(2).sqrt(prec=80)
        assert abs(x.to_float() - math.sqrt(2)) < 1e-16

    def test_sqrt_negative_raises(self):
        with pytest.raises(ValueError):
            bf(-1).sqrt()

    def test_sqrt_zero(self):
        assert BigFloat.zero().sqrt().is_zero()


class TestRounding:
    def test_round_to_3_bits(self):
        x = bf(0b1111)  # 15 -> 16 at 3 bits RNE
        assert x.round(3) == bf(16)

    def test_round_ties_to_even(self):
        assert bf(0b1010).round(3) == bf(10)  # exact at 3 bits: 101 * 2
        assert bf(0b1011).round(3) == bf(0b1100)  # tie .5 -> even (12)
        assert bf(0b1101).round(3) == bf(0b1100)  # tie -> even keeps 110

    def test_round_toward_zero(self):
        assert bf(0b1111).round(3, mode=RTZ) == bf(0b1110)

    def test_round_zero(self):
        assert BigFloat.zero().round(1).is_zero()


class TestToFloat:
    def test_roundtrip_simple(self):
        for v in (0.0, 1.0, -1.5, 0.1, 1e300, 5e-324, 2.2250738585072014e-308):
            assert BigFloat.from_float(v).to_float() == v

    def test_overflow_to_inf(self):
        assert BigFloat.exp2(1100).to_float() == math.inf
        assert BigFloat.exp2(1100).neg().to_float() == -math.inf

    def test_underflow_to_zero(self):
        assert BigFloat.exp2(-1200).to_float() == 0.0

    def test_subnormal_rounding(self):
        # 1.5 * 2**-1074 rounds to 2 * 2**-1074 (tie to even).
        x = BigFloat(0, 3, -1075)
        assert x.to_float() == math.ldexp(2, -1074)

    def test_smallest_subnormal(self):
        assert BigFloat.exp2(-1074).to_float() == 5e-324

    def test_just_below_smallest_subnormal(self):
        # 2**-1075 is a tie between 0 and 2**-1074; RNE picks 0 (even).
        assert BigFloat.exp2(-1075).to_float() == 0.0


class TestComparison:
    def test_ordering(self):
        assert bf(1) < bf(2)
        assert bf(-1) < bf(1)
        assert bf(-2) < bf(-1)
        assert BigFloat.zero() < bf(1)
        assert bf(-1) < BigFloat.zero()

    def test_equality_across_representations(self):
        assert BigFloat(0, 4, 0) == BigFloat(0, 1, 2)

    def test_same_scale_differs(self):
        assert BigFloat(0, 5, 0) > BigFloat(0, 9, -1)  # 5 vs 4.5

    def test_hash_consistency(self):
        assert hash(BigFloat(0, 4, 0)) == hash(BigFloat(0, 1, 2))


@settings(max_examples=200, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_add_matches_native_double(a, b):
    """At precision 53 with double-range inputs, BigFloat addition must
    agree with the hardware (both are RNE binary64 semantics), whenever
    the result stays in range."""
    res = math.fsum([a, b]) if False else a + b
    if math.isinf(res):
        return
    got = BigFloat.from_float(a).add(BigFloat.from_float(b), prec=53).to_float()
    assert got == res or (got == 0.0 and res == 0.0)


@settings(max_examples=200, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_mul_matches_native_double(a, b):
    res = a * b
    if math.isinf(res):
        return
    got = BigFloat.from_float(a).mul(BigFloat.from_float(b), prec=53).to_float()
    assert got == res or (got == 0.0 and res == 0.0)


@settings(max_examples=200, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64,
                 min_value=1e-300, max_value=1e300),
       st.floats(allow_nan=False, allow_infinity=False, width=64,
                 min_value=1e-300, max_value=1e300))
def test_div_matches_native_double(a, b):
    res = a / b
    if math.isinf(res) or res == 0.0:
        return
    got = BigFloat.from_float(a).div(BigFloat.from_float(b), prec=53).to_float()
    assert got == res


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-10**9, max_value=10**9),
       st.integers(min_value=-10**9, max_value=10**9))
def test_int_add_exact(a, b):
    assert BigFloat.from_int(a).add(BigFloat.from_int(b), prec=128) == BigFloat.from_int(a + b)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-10**6, max_value=10**6),
       st.integers(min_value=-10**6, max_value=10**6))
def test_int_mul_exact(a, b):
    assert BigFloat.from_int(a).mul(BigFloat.from_int(b), prec=128) == BigFloat.from_int(a * b)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
def test_neg_involution(a):
    x = BigFloat.from_float(a)
    assert x.neg().neg() == x


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_from_float_roundtrip(a):
    assert BigFloat.from_float(a).to_float() == a
