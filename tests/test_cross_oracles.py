"""Cross-oracle property tests tying independent components together:
BigFloat vs fractions.Fraction, binary32 vs numpy, and the bit-budget
model vs the posit codec's actual rounding error."""

import math
from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, relative_error
from repro.core import posit_effective_bits
from repro.formats import BINARY32, PositEnv, Real


# ----------------------------------------------------------------------
# BigFloat vs Fraction
# ----------------------------------------------------------------------
def to_fraction(x: BigFloat) -> Fraction:
    num, log2_den = x.to_fraction_parts()
    return Fraction(num, 1 << log2_den)


@settings(max_examples=150, deadline=None)
@given(st.fractions(min_value=-1000, max_value=1000),
       st.fractions(min_value=-1000, max_value=1000))
def test_bigfloat_add_vs_fraction(a, b):
    """At high precision BigFloat addition of dyadic inputs is exact and
    must equal Fraction arithmetic."""
    # Snap to dyadic values (limit denominators to powers of two).
    a = Fraction(a.numerator, 1 << min(30, a.denominator.bit_length()))
    b = Fraction(b.numerator, 1 << min(30, b.denominator.bit_length()))
    xa = BigFloat.from_ratio(a.numerator, a.denominator, prec=200)
    xb = BigFloat.from_ratio(b.numerator, b.denominator, prec=200)
    total = xa.add(xb, 256)
    assert to_fraction(total) == to_fraction(xa) + to_fraction(xb)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 10**9), st.integers(1, 10**9))
def test_bigfloat_div_vs_fraction(num, den):
    """from_ratio must be the correctly rounded Fraction value: the
    error is at most half an ulp at the requested precision."""
    prec = 96
    x = BigFloat.from_ratio(num, den, prec=prec)
    truth = Fraction(num, den)
    got = to_fraction(x)
    err = abs(got - truth) / truth
    assert err <= Fraction(1, 2 ** (prec - 1))


# ----------------------------------------------------------------------
# binary32 softfloat vs numpy
# ----------------------------------------------------------------------
f32 = st.floats(width=32, allow_nan=False, allow_infinity=False)


@settings(max_examples=250, deadline=None)
@given(f32, f32)
def test_binary32_add_vs_numpy(a, b):
    with np.errstate(all="ignore"):
        expected = np.float32(np.float32(a) + np.float32(b))
    got = BINARY32.to_float(BINARY32.add(BINARY32.from_float(a),
                                         BINARY32.from_float(b)))
    if np.isinf(expected):
        assert math.isinf(got)
    else:
        assert np.float32(got) == expected


@settings(max_examples=250, deadline=None)
@given(f32, f32)
def test_binary32_mul_vs_numpy(a, b):
    with np.errstate(all="ignore"):
        expected = np.float32(np.float32(a) * np.float32(b))
    got = BINARY32.to_float(BINARY32.mul(BINARY32.from_float(a),
                                         BINARY32.from_float(b)))
    if np.isinf(expected):
        assert math.isinf(got)
    else:
        assert np.float32(got) == expected


# ----------------------------------------------------------------------
# Bit-budget model vs codec rounding error
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=-27_000, max_value=-1),
       st.integers(min_value=1, max_value=(1 << 60) - 1))
def test_posit_roundtrip_error_bounded_by_budget(scale, frac):
    """Encoding any value of magnitude 2**scale loses at most half an
    ulp of the budgeted fraction width — the bit-budget model is not
    just a heuristic, it is the codec's contract.

    Domain: scales where the regime leaves the full ES exponent field
    (beyond that the *exponent* field truncates too and the granularity
    is coarser than any fraction-bit model — posit(64,9)'s last ~4600
    binades before minpos).
    """
    env = PositEnv(64, 9)
    x = Real(0, (1 << 60) | frac | 1, scale - 60)
    bits = env.encode_real(x)
    got = env.to_bigfloat(bits)
    budget = posit_effective_bits(env, scale)
    err = relative_error(x.to_bigfloat(), got).to_float()
    # Half an ulp at `budget` fraction bits, with one bit of slack for
    # values whose rounding crosses a regime boundary.
    assert err <= 2.0 ** -(budget - 1)


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=-2_000, max_value=-1))
def test_logspace_roundtrip_error_matches_model(scale):
    """Log-space roundtrip error tracks the Section II.C model within
    an order of magnitude."""
    from repro.core.bitbudget import logspace_effective_bits
    from repro.formats import LogSpace
    x = BigFloat(0, (1 << 60) + 987_654_321, scale - 60)
    codec = LogSpace()
    back = codec.decode_bigfloat(codec.encode_bigfloat(x))
    err = relative_error(x, back).to_float()
    model = 2.0 ** -(logspace_effective_bits(scale) + 1)
    assert err <= 8 * model
