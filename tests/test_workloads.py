"""The workload kernels: Viterbi, pair-HMM, and Kalman on the nd
plane.

Three families of pins:

* **Semiring identity** — the Viterbi *score* is literally the forward
  recurrence under ``semiring="max-product"`` (same kernel, different
  algebra), bit-for-bit per format.
* **Plan invariance** — batch and serial plans agree: bit-identical
  where the format certifies it (binary64, and max/mul everywhere),
  decision-identical for Viterbi paths in *every* format.
* **Refactor bit-identity** — the semiring-parameterized forward
  (which replaced the three duplicated sum-product loops) still
  matches the serial scalar fold B=1, pinned at 8-bit posit where the
  whole code space is exercised.
"""

import numpy as np
import pytest

from repro.arith import Binary64Backend, LogSpaceBackend
from repro.arith.backends import BigFloatBackend, LNSBackend, PositBackend
from repro.apps.hmm import forward, forward_batch
from repro.data.dirichlet import sample_hmm
from repro.engine.plan import ExecPlan
from repro.formats.lns import LNSEnv
from repro.formats.posit import PositEnv
from repro.workloads import (
    KalmanParams,
    PairHMMParams,
    ViterbiPath,
    WORKLOADS,
    get_workload,
    kalman_batch,
    pairhmm_batch,
    sample_tracks,
    viterbi,
    viterbi_batch,
)

FORMATS = ("binary64", "log", "posit(64,9)", "lns(12,50)")


def _backend(fmt):
    from repro.nd.context import _resolve_format
    return _resolve_format(fmt)


class TestRegistry:
    def test_workloads_registered(self):
        assert set(WORKLOADS) == {"viterbi", "pairhmm", "kalman"}
        assert WORKLOADS["viterbi"].semiring.name == "max-product"
        assert WORKLOADS["pairhmm"].semiring.name == "pairhmm-max"
        assert WORKLOADS["kalman"].semiring.name == "sum-product"
        assert WORKLOADS["viterbi"].certification == "max-exact"
        assert get_workload("kalman").runner is kalman_batch
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("sorting")


class TestViterbi:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_score_is_max_product_forward(self, fmt):
        """The semiring identity: same kernel, max algebra."""
        backend = _backend(fmt)
        hmm = sample_hmm(4, 5, 12, seed=2)
        decoded = viterbi(hmm, backend)
        score = forward(hmm, backend, semiring="max-product")
        assert decoded.score == score

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_batch_serial_decision_identity(self, fmt):
        """max/argmax decisions are plan-invariant in every format."""
        backend = _backend(fmt)
        hmm = sample_hmm(4, 5, 10, seed=3)
        rng = np.random.default_rng(4)
        obs = rng.integers(0, 5, size=(6, 10))
        batched = viterbi_batch(hmm, backend, obs)
        serial = viterbi_batch(hmm, backend, obs,
                               plan=ExecPlan.serial())
        for got, want in zip(batched, serial):
            assert got.states() == want.states()
            assert got.score == want.score

    def test_path_is_the_true_argmax(self):
        """Brute force: the decoded path maximizes the joint
        probability over all H**T paths (binary64, small instance)."""
        backend = Binary64Backend()
        hmm = sample_hmm(3, 4, 5, seed=6)
        decoded = viterbi(hmm, backend)

        from itertools import product
        a, b, pi, _ = hmm.as_float_arrays()
        obs = list(hmm.observations)

        def joint(path):
            p = pi[path[0]] * b[path[0], obs[0]]
            for t in range(1, len(obs)):
                p *= a[path[t - 1], path[t]] * b[path[t], obs[t]]
            return p

        best = max(product(range(3), repeat=len(obs)), key=joint)
        assert joint(tuple(decoded.states())) == joint(best)

    def test_single_matches_batch_of_one(self):
        backend = LogSpaceBackend(sum_mode="sequential")
        hmm = sample_hmm(4, 5, 8, seed=9)
        solo = viterbi(hmm, backend)
        [in_batch] = viterbi_batch(hmm, backend, [hmm.observations])
        assert isinstance(solo, ViterbiPath)
        assert solo.states() == in_batch.states()
        assert solo.score == in_batch.score

    def test_bad_obs_shape_rejected(self):
        backend = Binary64Backend()
        hmm = sample_hmm(3, 4, 5, seed=1)
        with pytest.raises(ValueError, match="batch"):
            from repro.workloads.viterbi import _viterbi_nd
            from repro.apps.hmm import model_arrays
            a, b, pi = model_arrays(hmm, backend, certified=False)
            _viterbi_nd(a, b, pi, np.zeros(5, dtype=int))


class TestPairHMM:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("semiring", ("pairhmm-max", "sum-product"))
    def test_batch_serial_equivalence(self, fmt, semiring):
        """Batch and serial plans run the same ops in the same order —
        bit-identical values per read."""
        backend = _backend(fmt)
        rng = np.random.default_rng(12)
        hap = rng.integers(0, 4, 15)
        reads = rng.integers(0, 4, (5, 6))
        batched = pairhmm_batch(hap, reads, backend, semiring=semiring)
        serial = pairhmm_batch(hap, reads, backend, semiring=semiring,
                               plan=ExecPlan.serial())
        assert batched == serial

    def test_sum_product_matches_scalar_reference(self):
        """An independent scalar float implementation of the GATK
        recurrence agrees with the nd kernel (binary64, sum-product:
        plain float adds, so the reference is exact modulo op order —
        which the kernel pins by construction)."""
        backend = Binary64Backend()
        rng = np.random.default_rng(13)
        hap = rng.integers(0, 4, 8)
        reads = rng.integers(0, 4, (3, 4))
        params = PairHMMParams(gap_open=0.1, gap_extend=0.2,
                               mismatch=0.05)
        got = pairhmm_batch(hap, reads, backend, params=params,
                            semiring="sum-product")

        t = params.transitions()
        length = hap.size
        for r in range(reads.shape[0]):
            read = reads[r]
            m = np.zeros((read.size + 1, length + 1))
            ins = np.zeros((read.size + 1, length + 1))
            del_ = np.zeros((read.size + 1, length + 1))
            del_[0, 1:] = 1.0 / length
            for i in range(1, read.size + 1):
                for j in range(1, length + 1):
                    prior = (1.0 - params.mismatch
                             if read[i - 1] == hap[j - 1]
                             else params.mismatch / 3.0)
                    m[i, j] = prior * (
                        t["tMM"] * m[i - 1, j - 1]
                        + t["tIM"] * ins[i - 1, j - 1]
                        + t["tDM"] * del_[i - 1, j - 1])
                for j in range(length + 1):
                    ins[i, j] = (t["tMI"] * m[i - 1, j]
                                 + t["tII"] * ins[i - 1, j])
                for j in range(1, length + 1):
                    del_[i, j] = (t["tMD"] * m[i, j - 1]
                                  + t["tDD"] * del_[i, j - 1])
            want = float(np.sum(m[read.size, 1:] + ins[read.size, 1:]))
            assert got[r] == pytest.approx(want, rel=1e-12)

    def test_hybrid_bounded_by_full_sum(self):
        """pairhmm-max recombines with max inside the recurrence, so
        its likelihood never exceeds the full sum's."""
        backend = Binary64Backend()
        rng = np.random.default_rng(14)
        hap = rng.integers(0, 4, 12)
        reads = rng.integers(0, 4, (4, 5))
        hybrid = pairhmm_batch(hap, reads, backend, semiring="pairhmm-max")
        full = pairhmm_batch(hap, reads, backend, semiring="sum-product")
        for h, f in zip(hybrid, full):
            assert 0.0 < h <= f

    def test_bad_reads_shape_rejected(self):
        backend = Binary64Backend()
        with pytest.raises(ValueError, match="batch"):
            pairhmm_batch([0, 1], np.zeros(3, dtype=int), backend)


class TestKalman:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_batch_serial_equivalence(self, fmt):
        backend = _backend(fmt)
        zs, _ = sample_tracks(4, 12, seed=20)
        batched = kalman_batch(zs, backend)
        serial = kalman_batch(zs, backend, plan=ExecPlan.serial())
        for got, want in zip(batched, serial):
            assert (got.x, got.p) == (want.x, want.p)

    def test_binary64_matches_float_reference(self):
        backend = Binary64Backend()
        params = KalmanParams(a=0.9, q=1e-4, r=1e-2, x0=0.5, p0=0.25)
        zs, _ = sample_tracks(3, 20, seed=21, params=params)
        got = kalman_batch(zs, backend, params=params)
        for trk in range(len(zs)):
            x, p = params.x0, params.p0
            for t in range(len(zs[0])):
                xp = params.a * x
                pp = params.a * params.a * p + params.q
                k = pp / (pp + params.r)
                omk = 1.0 - k
                x = omk * xp + k * zs[trk][t]
                p = omk * pp
            assert (got[trk].x, got[trk].p) == (x, p)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_cancellation_near_sub_domain_edge(self, fmt):
        """Gain saturation: r ≪ pp drives k within one ulp of 1, so
        ``one - k`` sits right at the ``sub`` domain edge (the result
        is tiny but must stay a strictly positive probability — a
        Kalman variance of exactly zero would mean a perfect filter).
        Every format must survive the cancellation with a usable
        estimate."""
        backend = _backend(fmt)
        params = KalmanParams(a=0.9, q=1e-4, r=1e-9, x0=0.5, p0=0.25)
        zs, _ = sample_tracks(3, 10, seed=22, params=params)
        got = kalman_batch(zs, backend, params=params)
        oracle = BigFloatBackend(256)
        truth = kalman_batch(zs, oracle, params=params)
        for est, ref in zip(got, truth):
            x = backend.to_bigfloat(est.x).to_float()
            p = backend.to_bigfloat(est.p).to_float()
            assert p > 0.0, "variance must survive the cancellation"
            ref_x = oracle.to_bigfloat(ref.x).to_float()
            assert x == pytest.approx(ref_x, rel=1e-6), fmt


class TestForwardRefactorBitIdentity:
    """Satellite 1: the semiring-parameterized forward replaced the
    duplicated sum-product loops; B=1 must still be bit-identical to
    the serial scalar fold — pinned where the whole code space is hot
    (8-bit posit) and on every 64-bit format."""

    @pytest.mark.parametrize("seed", range(6))
    def test_posit8_forward_batch_vs_serial(self, seed):
        backend = PositBackend(PositEnv(8, 1))
        hmm = sample_hmm(3, 4, 16, seed=seed)
        got = forward(hmm, backend)
        want = forward(hmm, backend, plan=ExecPlan.serial())
        assert got == want

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_forward_batch_vs_serial(self, fmt):
        backend = _backend(fmt)
        hmm = sample_hmm(5, 6, 24, seed=31)
        got = forward(hmm, backend)
        want = forward(hmm, backend, plan=ExecPlan.serial())
        assert got == want

    def test_max_product_threads_through_forward_batch(self):
        backend = Binary64Backend()
        hmm = sample_hmm(4, 5, 10, seed=33)
        rng = np.random.default_rng(34)
        obs = rng.integers(0, 5, size=(4, 10))
        scores = forward_batch(hmm, backend, obs,
                               semiring="max-product")
        decoded = viterbi_batch(hmm, backend, obs)
        assert scores == [d.score for d in decoded]

    def test_unknown_semiring_rejected(self):
        backend = Binary64Backend()
        hmm = sample_hmm(3, 4, 6, seed=35)
        with pytest.raises(ValueError, match="unknown semiring"):
            forward(hmm, backend, semiring="tropical")
