"""Tests for the analytic error-accumulation model and the hardware
Pareto/design-space layer."""

import math

import pytest

from repro.arith import LogSpaceBackend, PositBackend
from repro.apps.vicar import VicarConfig, run_vicar
from repro.core import (
    forward_op_count,
    pbd_op_count,
    per_op_error_log10,
    predict_logspace,
    predict_posit,
    predicted_gap_log_vs_posit,
)
from repro.formats import PositEnv
from repro.hw import (
    LOG,
    POSIT,
    column_design_space,
    dominated_count,
    forward_design_space,
    paper_scale_shapes,
    pareto_frontier,
)

import numpy as np


class TestErrorModel:
    def test_per_op_error(self):
        assert per_op_error_log10(52) == pytest.approx(-53 * math.log10(2))

    def test_op_counts(self):
        assert forward_op_count(13, 500_000) == 500_000 * 13 * 26
        assert pbd_op_count(100, 10) == 3_000

    def test_accumulation_grows_sqrt(self):
        p1 = predict_logspace(-500_000, 10_000)
        p2 = predict_logspace(-500_000, 1_000_000)
        assert p2.accumulated_log10 == pytest.approx(
            p1.accumulated_log10 + 1.0)  # 100x ops -> 1 decade

    def test_posit_out_of_range(self):
        assert predict_posit(PositEnv(64, 9), -500_000, 100) is None

    def test_predicted_gap_positive_at_deep_scale(self):
        """The bit-budget model predicts posit(64,18) beats log at the
        VICAR magnitudes."""
        gap = predicted_gap_log_vs_posit(PositEnv(64, 18), -590_000)
        assert gap is not None and gap > 1.0

    def test_predicted_gap_matches_measured_vicar(self):
        """Close the loop: the analytic prediction must match a measured
        VICAR run within ~1.5 decades (the model is first-order)."""
        config = VicarConfig(length=150, h_values=(5,), matrices_per_h=2,
                             bits_per_step=3_900.0, seed=9)
        backends = {"log": LogSpaceBackend(),
                    "posit(64,18)": PositBackend(PositEnv(64, 18))}
        result = run_vicar(config, backends)
        measured_gap = (np.median(result.log10_errors("log"))
                        - np.median(result.log10_errors("posit(64,18)")))
        final_scale = int(np.median(result.reference_scales))
        predicted = predicted_gap_log_vs_posit(PositEnv(64, 18), final_scale)
        assert measured_gap == pytest.approx(predicted, abs=1.5)
        assert measured_gap > 0

    def test_prediction_object(self):
        p = predict_posit(PositEnv(64, 18), -590_000, 10_000)
        assert p.format == "posit(64,18)"
        assert p.accumulated_log10 > p.per_op_log10


class TestPareto:
    def test_forward_design_space_size(self):
        points = forward_design_space(h_values=(13, 32))
        assert len(points) == 4

    def test_posit_dominates_log_designs(self):
        """Every log forward design is dominated by some posit design
        (faster AND smaller) — the paper's overall conclusion as a
        Pareto statement."""
        points = forward_design_space()
        n_log = sum(1 for p in points if p.style == LOG)
        assert dominated_count(points, LOG) == n_log
        assert dominated_count(points, POSIT) == 0

    def test_frontier_is_posit_only(self):
        points = forward_design_space()
        frontier = pareto_frontier(points)
        assert frontier
        assert all(p.style == POSIT for p in frontier)

    def test_frontier_one_point_per_workload(self):
        h_values = (13, 32, 64)
        points = forward_design_space(h_values=h_values)
        frontier = pareto_frontier(points)
        assert len(frontier) == len(h_values)
        assert sorted(p.workload for p in frontier) == list(h_values)

    def test_column_design_space(self):
        shape = paper_scale_shapes(seed=0, n_datasets=1)[0]
        points = column_design_space(shape, pe_counts=(4, 8))
        assert len(points) == 4
        assert dominated_count(points, POSIT) == 0

    def test_energy_model_ordering(self):
        """Posit designs use less energy at equal work (they are both
        faster and smaller)."""
        points = forward_design_space(h_values=(64,))
        by_style = {p.style: p for p in points}
        assert by_style[POSIT].joules < by_style[LOG].joules
        assert by_style[POSIT].watts < by_style[LOG].watts
