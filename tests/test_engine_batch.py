"""Unit tests of the batch backend protocol (repro.engine.batch)."""

import math

import numpy as np
import pytest

from repro.arith import (
    BigFloatBackend,
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
)
from repro.bigfloat import BigFloat
from repro.engine import (
    HAVE_NUMPY,
    BatchBinary64,
    BatchLogSpace,
    BatchPosit,
    batch_backend_for,
    standard_batch_backends,
)
from repro.formats import PositEnv
from repro.formats.logspace import lse2, lse_n, lse_sequential


def test_numpy_gate_is_on_here():
    # The suite runs with numpy installed; the gate must reflect that.
    assert HAVE_NUMPY


class TestFactory:
    def test_binary64(self):
        scalar = Binary64Backend()
        bb = batch_backend_for(scalar)
        assert isinstance(bb, BatchBinary64)
        assert bb.scalar is scalar

    def test_logspace_inherits_sum_mode(self):
        bb = batch_backend_for(LogSpaceBackend(sum_mode="sequential"))
        assert isinstance(bb, BatchLogSpace)
        assert bb.sum_mode == "sequential"

    def test_posit_shares_env(self):
        scalar = PositBackend(PositEnv(64, 12))
        bb = batch_backend_for(scalar)
        assert isinstance(bb, BatchPosit)
        assert bb.env is scalar.env

    def test_lns_shares_env(self):
        from repro.engine import BatchLNS
        scalar = LNSBackend()
        bb = batch_backend_for(scalar)
        assert isinstance(bb, BatchLNS)
        assert bb.env is scalar.env

    def test_unsupported_formats_return_none(self):
        assert batch_backend_for(BigFloatBackend()) is None

    def test_standard_batch_backends(self):
        batches = standard_batch_backends()
        assert set(batches) == {"binary64", "log", "posit(64,9)",
                                "posit(64,12)", "posit(64,18)"}
        for name, bb in batches.items():
            assert bb is not None and bb.name == name


class TestBatchBinary64:
    def test_identities(self):
        bb = BatchBinary64()
        assert bb.zeros(3).tolist() == [0.0, 0.0, 0.0]
        assert bb.ones(2).tolist() == [1.0, 1.0]
        assert bb.is_zero(np.array([0.0, 0.5])).tolist() == [True, False]

    def test_sum_matches_scalar_fold(self):
        bb = BatchBinary64()
        scalar = Binary64Backend()
        vals = np.array([[0.1, 0.2, 0.7], [1e-300, 1e300, 1.0]])
        got = bb.sum(vals, axis=1)
        for i in range(2):
            assert got[i] == scalar.sum(list(vals[i]))

    def test_from_bigfloats(self):
        bb = BatchBinary64()
        arr = bb.from_bigfloats([BigFloat.from_float(0.25),
                                 BigFloat.exp2(-2000)])
        assert arr[0] == 0.25
        assert arr[1] == 0.0  # underflow, the paper's failure mode


class TestBatchLogSpace:
    def test_add_is_lse2_bitwise(self):
        bb = BatchLogSpace()
        rng = np.random.default_rng(0)
        a = -np.exp(rng.uniform(-2, 9, 2000))
        b = a + rng.uniform(-750, 750, 2000)
        got = bb.add(a, b)
        want = np.array([lse2(x, y) for x, y in zip(a, b)])
        assert (got == want).all()

    def test_add_neg_inf_edges(self):
        bb = BatchLogSpace()
        a = np.array([-np.inf, -np.inf, 0.0])
        b = np.array([-np.inf, -3.0, -np.inf])
        assert bb.add(a, b).tolist() == [-np.inf, -3.0, 0.0]

    def test_mul_zero_absorbs(self):
        bb = BatchLogSpace()
        a = np.array([-np.inf, -1.0, -np.inf])
        b = np.array([-2.0, -np.inf, -np.inf])
        got = bb.mul(a, b)
        assert np.isneginf(got).all()

    def test_mul_is_float_add(self):
        bb = BatchLogSpace()
        assert bb.mul(np.array([-1.5]), np.array([-2.25]))[0] == -3.75

    def test_sequential_sum_bitwise(self):
        bb = BatchLogSpace(sum_mode="sequential")
        rng = np.random.default_rng(1)
        rows = rng.uniform(-2000, 0, size=(5, 17))
        got = bb.sum(rows, axis=1)
        for i in range(5):
            assert got[i] == lse_sequential(list(rows[i]))

    def test_nary_sum_close_to_lse_n(self):
        bb = BatchLogSpace(sum_mode="nary")
        rng = np.random.default_rng(2)
        rows = rng.uniform(-2000, 0, size=(5, 17))
        got = bb.sum(rows, axis=1)
        for i in range(5):
            want = lse_n(list(rows[i]))
            assert got[i] == pytest.approx(want, rel=1e-14)

    def test_sum_all_zero_probability(self):
        bb = BatchLogSpace()
        rows = np.full((2, 4), -np.inf)
        assert np.isneginf(bb.sum(rows, axis=1)).all()
        bb2 = BatchLogSpace(sum_mode="nary")
        assert np.isneginf(bb2.sum(rows, axis=1)).all()

    def test_bad_sum_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchLogSpace(sum_mode="tree")

    def test_default_mirrors_scalar_default(self):
        assert BatchLogSpace().sum_mode == LogSpaceBackend().sum_mode

    def test_scalar_sum_mode_inherited_and_contradiction_rejected(self):
        scalar = LogSpaceBackend(sum_mode="sequential")
        assert BatchLogSpace(scalar=scalar).sum_mode == "sequential"
        assert BatchLogSpace(sum_mode="sequential",
                             scalar=scalar).sum_mode == "sequential"
        with pytest.raises(ValueError):
            BatchLogSpace(sum_mode="nary", scalar=scalar)

    def test_conversions_roundtrip(self):
        bb = BatchLogSpace()
        deep = BigFloat.exp2(-500_000)
        arr = bb.from_bigfloats([BigFloat.from_float(0.5), deep])
        assert arr[0] == math.log(0.5)
        back = bb.to_bigfloats(arr)
        # log-space re-encodes with one rounding; magnitudes must agree.
        assert back[1].scale == deep.scale


class TestScalarLogSpaceSumModes:
    def test_scalar_sequential_mode(self):
        seq = LogSpaceBackend(sum_mode="sequential")
        nary = LogSpaceBackend()
        vals = [-1000.0, -1000.5, -999.25, -2000.0]
        assert seq.sum(vals) == lse_sequential(vals)
        assert nary.sum(vals) == lse_n(vals)

    def test_scalar_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            LogSpaceBackend(sum_mode="pairwise")


class TestBatchBinary64SubDiv:
    def test_sub_bitwise(self):
        bb = BatchBinary64()
        scalar = Binary64Backend()
        rng = np.random.default_rng(11)
        a = rng.uniform(0.0, 1.0, 200)
        b = rng.uniform(0.0, 1.0, 200)
        got = bb.sub(a, b)
        for i in range(a.size):
            assert got[i] == scalar.sub(float(a[i]), float(b[i]))

    def test_div_bitwise_and_zero_raises(self):
        bb = BatchBinary64()
        scalar = Binary64Backend()
        rng = np.random.default_rng(12)
        a = rng.uniform(0.0, 1.0, 200)
        b = rng.uniform(1e-12, 1.0, 200)
        got = bb.div(a, b)
        for i in range(a.size):
            assert got[i] == scalar.div(float(a[i]), float(b[i]))
        with pytest.raises(ZeroDivisionError):
            bb.div(a, np.where(b > 0.5, 0.0, b))
        with pytest.raises(ZeroDivisionError):
            scalar.div(0.5, 0.0)

    def test_recip_is_div_by_one(self):
        bb = BatchBinary64()
        arr = np.array([0.5, 0.25, 2.0])
        assert (bb.recip(arr) == 1.0 / arr).all()


class TestBatchLogSpaceSubDiv:
    """Native log-diff-exp subtraction: bit-identical to the scalar
    backend (both route the interior through NumPy's exp/log1p), with
    the scalar's probability-domain errors vectorized."""

    def setup_method(self):
        self.bb = BatchLogSpace()
        self.scalar = LogSpaceBackend()

    def test_sub_bitwise_vs_scalar(self):
        rng = np.random.default_rng(13)
        a = rng.uniform(-2000.0, 0.0, 500)
        b = a - rng.uniform(0.0, 60.0, 500)  # b <= a
        got = self.bb.sub(a, b)
        for i in range(a.size):
            assert got[i] == self.scalar.sub(float(a[i]), float(b[i])), i

    def test_sub_domain_edges(self):
        ninf = -math.inf
        a = np.array([-1.0, -5.0, ninf, -3.0])
        b = np.array([-1.0, ninf, ninf, -3.0 - 1e-9])
        got = self.bb.sub(a, b)
        # a == b -> exact zero; b == zero -> a; zero - zero -> zero.
        assert got[0] == ninf
        assert got[1] == -5.0
        assert got[2] == ninf
        assert got[3] == self.scalar.sub(-3.0, -3.0 - 1e-9)
        # Deep magnitudes far below binary64's value range.
        deep_a, deep_b = -70000.0, -70000.5
        assert self.bb.sub(np.array([deep_a]), np.array([deep_b]))[0] == \
            self.scalar.sub(deep_a, deep_b)

    def test_sub_negative_result_raises(self):
        with pytest.raises(ValueError):
            self.bb.sub(np.array([-2.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            self.bb.sub(np.array([-math.inf]), np.array([-1.0]))
        with pytest.raises(ValueError):
            self.scalar.sub(-2.0, -1.0)

    def test_div_is_float_sub_with_zero_guard(self):
        a = np.array([-1.0, -math.inf, -3.5])
        b = np.array([-2.0, -2.0, -0.5])
        got = self.bb.div(a, b)
        for i in range(a.size):
            assert got[i] == self.scalar.div(float(a[i]), float(b[i]))
        with pytest.raises(ZeroDivisionError):
            self.bb.div(a, np.array([-2.0, -math.inf, -0.5]))
        with pytest.raises(ZeroDivisionError):
            self.scalar.div(-1.0, -math.inf)


class TestBatchProtocolDefaults:
    def test_sub_div_default_raise_for_exotic_mirrors(self):
        from repro.engine.batch import BatchBackend

        class NoOps(BatchBinary64):
            sub = BatchBackend.sub
            div = BatchBackend.div

        bb = NoOps()
        with pytest.raises(NotImplementedError):
            bb.sub(np.zeros(2), np.zeros(2))
        with pytest.raises(NotImplementedError):
            bb.div(np.zeros(2), np.ones(2))

    def test_axpy_default_is_add_mul(self):
        bb = BatchLogSpace()
        rng = np.random.default_rng(14)
        a, x, y = (rng.uniform(-50.0, 0.0, 64) for _ in range(3))
        assert (bb.axpy(a, x, y) == bb.add(bb.mul(a, x), y)).all()

    def test_every_standard_mirror_has_native_sub_div(self):
        """The registry capability flag is backed by real kernels: no
        standard batch backend inherits the raising defaults."""
        from repro.arith.registry import FULL_BATCH_OPS, REGISTRY
        from repro.engine.batch import BatchBackend
        for name, bb in standard_batch_backends().items():
            caps = REGISTRY.capabilities(name)
            assert caps.batch_ops == FULL_BATCH_OPS, name
            assert type(bb).sub is not BatchBackend.sub, name
            assert type(bb).div is not BatchBackend.div, name
        lns = batch_backend_for(LNSBackend())
        assert type(lns).sub is not BatchBackend.sub
        assert type(lns).div is not BatchBackend.div
