"""ExecPlan: validation, plan threading (explicit and ambient), group
slicing, and the *removal* of the PR 3 ``batch=``/``n_workers=``
deprecation shims — one release on, every former shim site must reject
the legacy kwargs with a plain :class:`TypeError`.
"""

import numpy as np
import pytest

from repro.arith import LogSpaceBackend, PositBackend, standard_backends
from repro.bigfloat import BigFloat
from repro.engine import (DEFAULT_PLAN, ExecPlan, current_plan,
                          resolve_plan, use_plan)
from repro.formats import PositEnv


class TestExecPlan:
    def test_default_is_batch_canonical(self):
        assert DEFAULT_PLAN.batch is True
        assert DEFAULT_PLAN.n_workers is None
        assert DEFAULT_PLAN.cache == "auto"
        assert not DEFAULT_PLAN.measure

    def test_serial_constructor(self):
        plan = ExecPlan.serial()
        assert plan.batch is False
        assert ExecPlan.serial(n_workers=2).n_workers == 2

    def test_with_replaces_fields(self):
        plan = DEFAULT_PLAN.with_(n_workers=4, cache="off")
        assert (plan.n_workers, plan.cache) == (4, "off")
        assert DEFAULT_PLAN.n_workers is None  # frozen, copy-on-write

    @pytest.mark.parametrize("bad", [
        {"batch_size": 0}, {"chunk_size": 0}, {"n_workers": -1},
        {"cache": "sometimes"},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExecPlan(**bad)

    def test_parallel_property(self):
        assert not ExecPlan().parallel
        assert not ExecPlan(n_workers=1).parallel
        assert ExecPlan(n_workers=2).parallel

    def test_group_slices(self):
        assert ExecPlan().group_slices(5) == [slice(0, 5)]
        assert ExecPlan(batch_size=2).group_slices(5) == \
            [slice(0, 2), slice(2, 4), slice(4, 5)]
        assert ExecPlan(batch_size=2).group_slices(0) == [slice(0, 0)]


class TestResolvePlan:
    def test_passthrough(self):
        plan = ExecPlan(n_workers=3)
        assert resolve_plan(plan) is plan
        assert resolve_plan(None) is DEFAULT_PLAN

    def test_type_check(self):
        with pytest.raises(TypeError):
            resolve_plan({"batch": True})


class TestAmbientPlan:
    """with use_plan(...): installs the plan every plan-aware call
    picks up when no explicit plan= is passed."""

    def test_current_plan_defaults(self):
        assert current_plan() is DEFAULT_PLAN

    def test_use_plan_scopes_and_nests(self):
        outer = ExecPlan(n_workers=2)
        inner = ExecPlan.serial()
        with use_plan(outer):
            assert current_plan() is outer
            assert resolve_plan(None) is outer
            with use_plan(inner):
                assert resolve_plan(None) is inner
            assert current_plan() is outer
        assert current_plan() is DEFAULT_PLAN

    def test_explicit_plan_beats_ambient(self):
        explicit = ExecPlan(batch_size=7)
        with use_plan(ExecPlan.serial()):
            assert resolve_plan(explicit) is explicit

    def test_use_plan_type_check(self):
        with pytest.raises(TypeError):
            with use_plan("serial"):
                pass

    def test_ambient_plan_reaches_apps(self):
        from repro.apps.hmm import forward
        from repro.data.dirichlet import sample_hmm
        hmm = sample_hmm(3, 4, 6, seed=3)
        backend = LogSpaceBackend(sum_mode="sequential")
        default = forward(hmm, backend)
        with use_plan(ExecPlan.serial()):
            assert forward(hmm, backend) == default


class TestExecPlanRepr:
    def test_default_is_bare(self):
        assert repr(ExecPlan()) == "ExecPlan()"

    def test_non_defaults_only(self):
        assert repr(ExecPlan.serial()) == "ExecPlan(batch=False)"
        text = repr(ExecPlan(n_workers=4, cache="off"))
        assert text == "ExecPlan(n_workers=4, cache='off')"


def _columns(n=4):
    from repro.data.genome import synth_dataset
    return synth_dataset("shim", n, seed=0, critical_fraction=0.5,
                         deep_fraction=0.25).columns


class TestLegacyKwargsRemoved:
    """The PR 3 one-release deprecation shims are gone: every former
    batch=/n_workers= call site now rejects the legacy kwargs with a
    plain TypeError (unexpected keyword argument)."""

    def test_run_lofreq(self):
        from repro.apps.lofreq import run_lofreq
        backends = {"log": LogSpaceBackend()}
        with pytest.raises(TypeError):
            run_lofreq(_columns(), backends, batch=True)

    def test_column_pvalues(self):
        from repro.apps.lofreq import column_pvalues
        backend = PositBackend(PositEnv(64, 18))
        with pytest.raises(TypeError):
            column_pvalues(_columns(), backend, batch=False)

    def test_run_vicar(self):
        from repro.apps.vicar import VicarConfig, run_vicar
        config = VicarConfig(length=8, h_values=(3,), matrices_per_h=2,
                             bits_per_step=40.0, seed=0, oracle_prec=128)
        backends = {"log": LogSpaceBackend(sum_mode="sequential")}
        with pytest.raises(TypeError):
            run_vicar(config, backends, batch=True, n_workers=0)

    def test_run_chains(self):
        from repro.apps.mcmc import run_chains
        backend = PositBackend(PositEnv(64, 18))
        with pytest.raises(TypeError):
            run_chains(backend, 2, steps=3, seeds=[1, 2], batch=False)

    def test_run_op_sweep(self):
        from repro.core.analysis import run_op_sweep
        from repro.core.sweep import FIG3_BINS
        with pytest.raises(TypeError):
            run_op_sweep("add", standard_backends(), per_bin=4,
                         bins=(FIG3_BINS[0],), seed=1, batch=True)

    @pytest.mark.parametrize("module, kwargs", [
        ("fig3_op_accuracy", {"batch": True, "n_workers": 0}),
        ("fig9_pvalue_accuracy", {"batch": True}),
        ("fig10_vicar_cdf", {"batch": True}),
        ("fig11_lofreq_cdf", {"batch": True}),
    ])
    def test_experiment_runs_reject(self, module, kwargs):
        import importlib
        mod = importlib.import_module(f"repro.experiments.{module}")
        with pytest.raises(TypeError):
            mod.run("test", **kwargs)

    def test_fig6_rejects_legacy_batch(self):
        from repro.experiments import fig6_forward_perf
        with pytest.raises(TypeError):
            fig6_forward_perf.run(batch=True)

    def test_run_experiment_rejects_legacy_batch(self, tmp_path,
                                                 monkeypatch):
        from repro.experiments.runner import run_experiment
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.raises(TypeError):
            run_experiment("table1", batch=True)

    def test_resolve_plan_has_no_legacy_path(self):
        with pytest.raises(TypeError):
            resolve_plan(None, {"batch": True}, where="test")


class TestBatchSizeGrouping:
    """plan.batch_size slices the vectorized passes without changing a
    single value."""

    def test_forward_batch_grouped(self):
        from repro.apps.hmm import forward_batch
        from repro.data.dirichlet import sample_hmm
        backend = LogSpaceBackend(sum_mode="sequential")
        hmm = sample_hmm(4, 5, 12, seed=9)
        obs = np.random.default_rng(10).integers(0, 5, size=(7, 12))
        whole = forward_batch(hmm, backend, obs)
        grouped = forward_batch(hmm, backend, obs,
                                plan=ExecPlan(batch_size=3))
        assert whole == grouped

    def test_pbd_batch_grouped(self):
        from repro.apps.pbd import pbd_pvalue_batch
        backend = PositBackend(PositEnv(64, 12))
        rng = np.random.default_rng(12)
        sites = [[BigFloat.from_float(float(p))
                  for p in rng.uniform(1e-6, 0.3, 15)] for _ in range(5)]
        whole = pbd_pvalue_batch(sites, 2, backend)
        grouped = pbd_pvalue_batch(sites, 2, backend,
                                   plan=ExecPlan(batch_size=2))
        assert whole == grouped

    def test_forward_models_batch_grouped(self):
        from repro.apps.hmm import forward_models_batch
        from repro.data.dirichlet import sample_hcg_like_hmm
        backend = LogSpaceBackend(sum_mode="sequential")
        models = [sample_hcg_like_hmm(3, 8, seed=s, bits_per_step=30.0)
                  for s in range(5)]
        whole = forward_models_batch(models, backend)
        grouped = forward_models_batch(models, backend,
                                       plan=ExecPlan(batch_size=2))
        assert whole == grouped


class TestPlanJson:
    """ExecPlan.to_json/from_json: the versioned wire form plans use to
    travel inside repro.service requests."""

    def test_round_trip(self):
        import json
        from repro.engine import PLAN_SCHEMA_VERSION
        plan = ExecPlan(batch=False, batch_size=8, n_workers=2,
                        chunk_size=100, cache="refresh", measure=True)
        wire = json.loads(json.dumps(plan.to_json()))
        assert wire["plan_version"] == PLAN_SCHEMA_VERSION
        assert ExecPlan.from_json(wire) == plan

    def test_absent_fields_keep_defaults(self):
        assert ExecPlan.from_json({}) == ExecPlan()
        assert ExecPlan.from_json({"batch": False}) == \
            ExecPlan(batch=False)

    def test_unknown_field_rejected_with_version(self):
        from repro.engine import PLAN_SCHEMA_VERSION
        with pytest.raises(ValueError) as err:
            ExecPlan.from_json({"batch": True, "gpu": "yes"})
        message = str(err.value)
        assert "'gpu'" in message
        assert f"v{PLAN_SCHEMA_VERSION}" in message
        assert "batch_size" in message  # names the known fields

    def test_newer_schema_rejected(self):
        from repro.engine import PLAN_SCHEMA_VERSION
        with pytest.raises(ValueError, match="newer than this build"):
            ExecPlan.from_json(
                {"plan_version": PLAN_SCHEMA_VERSION + 1})

    def test_bad_version_tag_rejected(self):
        for bad in (0, -1, "1", 1.5, True):
            with pytest.raises(ValueError, match="plan_version"):
                ExecPlan.from_json({"plan_version": bad})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            ExecPlan.from_json("batch")

    def test_invalid_field_value_is_versioned_value_error(self):
        # Constructor TypeErrors/ValueErrors surface as the versioned
        # rejection, not a bare TypeError.
        with pytest.raises(ValueError, match="rejected"):
            ExecPlan.from_json({"cache": "maybe"})
        with pytest.raises(ValueError, match="rejected"):
            ExecPlan.from_json({"batch_size": 0})

    def test_compiled_round_trips_at_v2(self):
        """PR 8: ``compiled`` travels on the wire; the schema version
        names the addition."""
        from repro.engine import PLAN_SCHEMA_VERSION
        assert PLAN_SCHEMA_VERSION == 2
        plan = ExecPlan(compiled=True)
        wire = plan.to_json()
        assert wire["compiled"] is True
        assert ExecPlan.from_json(wire) == plan
        # v1 payloads (no compiled field) keep parsing with the
        # default, so pre-PR 8 senders are unaffected.
        v1 = ExecPlan().to_json()
        del v1["compiled"]
        v1["plan_version"] = 1
        assert ExecPlan.from_json(v1) == ExecPlan()
