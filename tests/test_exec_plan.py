"""ExecPlan: validation, plan threading, group slicing, and the
one-release deprecation shims for the removed ``batch=``/``n_workers=``
kwarg pairs (every shim must emit DeprecationWarning and produce the
same results as the equivalent plan).
"""

import numpy as np
import pytest

from repro.arith import LogSpaceBackend, PositBackend, standard_backends
from repro.bigfloat import BigFloat
from repro.engine import DEFAULT_PLAN, ExecPlan, resolve_plan
from repro.formats import PositEnv


class TestExecPlan:
    def test_default_is_batch_canonical(self):
        assert DEFAULT_PLAN.batch is True
        assert DEFAULT_PLAN.n_workers is None
        assert DEFAULT_PLAN.cache == "auto"
        assert not DEFAULT_PLAN.measure

    def test_serial_constructor(self):
        plan = ExecPlan.serial()
        assert plan.batch is False
        assert ExecPlan.serial(n_workers=2).n_workers == 2

    def test_with_replaces_fields(self):
        plan = DEFAULT_PLAN.with_(n_workers=4, cache="off")
        assert (plan.n_workers, plan.cache) == (4, "off")
        assert DEFAULT_PLAN.n_workers is None  # frozen, copy-on-write

    @pytest.mark.parametrize("bad", [
        {"batch_size": 0}, {"chunk_size": 0}, {"n_workers": -1},
        {"cache": "sometimes"},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExecPlan(**bad)

    def test_parallel_property(self):
        assert not ExecPlan().parallel
        assert not ExecPlan(n_workers=1).parallel
        assert ExecPlan(n_workers=2).parallel

    def test_group_slices(self):
        assert ExecPlan().group_slices(5) == [slice(0, 5)]
        assert ExecPlan(batch_size=2).group_slices(5) == \
            [slice(0, 2), slice(2, 4), slice(4, 5)]
        assert ExecPlan(batch_size=2).group_slices(0) == [slice(0, 0)]


class TestResolvePlan:
    def test_passthrough(self):
        plan = ExecPlan(n_workers=3)
        assert resolve_plan(plan) is plan
        assert resolve_plan(None) is DEFAULT_PLAN

    def test_type_check(self):
        with pytest.raises(TypeError):
            resolve_plan({"batch": True})

    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning):
            plan = resolve_plan(None, {"batch": False, "n_workers": 2},
                                where="test")
        assert (plan.batch, plan.n_workers) == (False, 2)

    def test_legacy_none_values_are_unset(self):
        with pytest.warns(DeprecationWarning):
            plan = resolve_plan(None, {"batch": None, "n_workers": 0},
                                where="test")
        assert plan.batch is True  # None means "not passed"
        assert plan.n_workers == 0

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError):
            resolve_plan(None, {"n_wokers": 2}, where="test")

    def test_batch_field_remap(self):
        with pytest.warns(DeprecationWarning):
            plan = resolve_plan(None, {"batch": True}, where="fig6",
                                batch_field="measure")
        assert plan.measure is True and plan.batch is True


def _columns(n=4):
    from repro.data.genome import synth_dataset
    return synth_dataset("shim", n, seed=0, critical_fraction=0.5,
                         deep_fraction=0.25).columns


class TestDeprecationShims:
    """Every former batch=/n_workers= call site still works for one
    release, warns, and matches the plan spelling exactly."""

    def test_run_lofreq(self):
        from repro.apps.lofreq import run_lofreq
        backends = {"log": LogSpaceBackend()}
        columns = _columns()
        with pytest.warns(DeprecationWarning):
            legacy = run_lofreq(columns, backends, batch=True)
        planned = run_lofreq(columns, backends, plan=ExecPlan())
        assert legacy.scores == planned.scores

    def test_column_pvalues(self):
        from repro.apps.lofreq import column_pvalues
        backend = PositBackend(PositEnv(64, 18))
        columns = _columns()
        with pytest.warns(DeprecationWarning):
            legacy = column_pvalues(columns, backend, batch=False)
        assert legacy == column_pvalues(columns, backend,
                                        plan=ExecPlan.serial())

    def test_run_vicar(self):
        from repro.apps.vicar import VicarConfig, run_vicar
        config = VicarConfig(length=8, h_values=(3,), matrices_per_h=2,
                             bits_per_step=40.0, seed=0, oracle_prec=128)
        backends = {"log": LogSpaceBackend(sum_mode="sequential")}
        with pytest.warns(DeprecationWarning):
            legacy = run_vicar(config, backends, batch=True, n_workers=0)
        planned = run_vicar(config, backends, plan=ExecPlan(n_workers=0))
        assert legacy.scores == planned.scores

    def test_run_chains(self):
        from repro.apps.mcmc import run_chains
        backend = PositBackend(PositEnv(64, 18))
        with pytest.warns(DeprecationWarning):
            legacy = run_chains(backend, 2, steps=3, seeds=[1, 2],
                                batch=False)
        planned = run_chains(backend, 2, steps=3, seeds=[1, 2],
                             plan=ExecPlan.serial())
        for g, w in zip(legacy, planned):
            assert (g.accepted, g.rejected, g.stuck, g.samples) == \
                (w.accepted, w.rejected, w.stuck, w.samples)

    def test_run_op_sweep(self):
        from repro.core.analysis import run_op_sweep
        from repro.core.sweep import FIG3_BINS
        backends = standard_backends()
        bins = (FIG3_BINS[0], FIG3_BINS[-1])
        with pytest.warns(DeprecationWarning):
            legacy = run_op_sweep("add", backends, per_bin=4, bins=bins,
                                  seed=1, batch=True)
        planned = run_op_sweep("add", backends, per_bin=4, bins=bins, seed=1)
        assert {b: {f: s.row() for f, s in cell.items()}
                for b, cell in legacy.boxes.items()} == \
            {b: {f: s.row() for f, s in cell.items()}
             for b, cell in planned.boxes.items()}

    @pytest.mark.parametrize("module, kwargs", [
        ("fig3_op_accuracy", {"batch": True, "n_workers": 0}),
        ("fig9_pvalue_accuracy", {"batch": True}),
        ("fig10_vicar_cdf", {"batch": True}),
        ("fig11_lofreq_cdf", {"batch": True}),
    ])
    def test_experiment_runs_warn(self, module, kwargs):
        import importlib
        mod = importlib.import_module(f"repro.experiments.{module}")
        with pytest.warns(DeprecationWarning):
            mod.run("test", **kwargs)

    def test_fig6_batch_maps_to_measure(self):
        from repro.experiments import fig6_forward_perf
        with pytest.warns(DeprecationWarning):
            rows = fig6_forward_perf.run(batch=True)
        assert all(r.sw_scalar_mmaps is not None for r in rows)

    def test_run_experiment_shim(self, tmp_path, monkeypatch):
        from repro.experiments.runner import run_experiment
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.warns(DeprecationWarning):
            text = run_experiment("table1", batch=True)
        assert text == run_experiment("table1", plan=ExecPlan())


class TestBatchSizeGrouping:
    """plan.batch_size slices the vectorized passes without changing a
    single value."""

    def test_forward_batch_grouped(self):
        from repro.apps.hmm import forward_batch
        from repro.data.dirichlet import sample_hmm
        backend = LogSpaceBackend(sum_mode="sequential")
        hmm = sample_hmm(4, 5, 12, seed=9)
        obs = np.random.default_rng(10).integers(0, 5, size=(7, 12))
        whole = forward_batch(hmm, backend, obs)
        grouped = forward_batch(hmm, backend, obs,
                                plan=ExecPlan(batch_size=3))
        assert whole == grouped

    def test_pbd_batch_grouped(self):
        from repro.apps.pbd import pbd_pvalue_batch
        backend = PositBackend(PositEnv(64, 12))
        rng = np.random.default_rng(12)
        sites = [[BigFloat.from_float(float(p))
                  for p in rng.uniform(1e-6, 0.3, 15)] for _ in range(5)]
        whole = pbd_pvalue_batch(sites, 2, backend)
        grouped = pbd_pvalue_batch(sites, 2, backend,
                                   plan=ExecPlan(batch_size=2))
        assert whole == grouped

    def test_forward_models_batch_grouped(self):
        from repro.apps.hmm import forward_models_batch
        from repro.data.dirichlet import sample_hcg_like_hmm
        backend = LogSpaceBackend(sum_mode="sequential")
        models = [sample_hcg_like_hmm(3, 8, seed=s, bits_per_step=30.0)
                  for s in range(5)]
        whole = forward_models_batch(models, backend)
        grouped = forward_models_batch(models, backend,
                                       plan=ExecPlan(batch_size=2))
        assert whole == grouped
