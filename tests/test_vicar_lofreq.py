"""Application-level accuracy tests (the claims behind Figures 9-11),
run at scaled sizes."""

import pytest

from repro.arith import LogSpaceBackend, PositBackend, standard_backends
from repro.apps import run_vicar, scaled_config
from repro.apps.lofreq import run_lofreq
from repro.apps.vicar import VicarConfig, generate_instances, paper_config
from repro.data import column_for_target_scale
from repro.formats import PositEnv

import numpy as np


@pytest.fixture(scope="module")
def vicar_result():
    """A small VICAR run in the T=100k magnitude regime (likelihoods
    ~2**-590_000), log vs posit(64,18) — Figure 10's comparison."""
    config = VicarConfig(length=200, h_values=(5,), matrices_per_h=3,
                         bits_per_step=2950.0, seed=1)
    backends = {
        "log": LogSpaceBackend(),
        "posit(64,18)": PositBackend(PositEnv(64, 18)),
    }
    return run_vicar(config, backends)


class TestVicar:
    def test_reference_scale_regime(self, vicar_result):
        for s in vicar_result.reference_scales:
            assert -700_000 < s < -400_000

    def test_posit18_beats_log(self, vicar_result):
        """Figure 10: posit(64,18) likelihoods are about two orders of
        magnitude more accurate than log-space."""
        log_err = np.median(vicar_result.log10_errors("log"))
        posit_err = np.median(vicar_result.log10_errors("posit(64,18)"))
        assert posit_err < log_err - 1.0  # >= 1 order of magnitude

    def test_no_failures(self, vicar_result):
        assert vicar_result.failure_count("log") == 0
        assert vicar_result.failure_count("posit(64,18)") == 0

    def test_fraction_below_readout(self, vicar_result):
        frac = vicar_result.fraction_below("posit(64,18)", -8.0)
        assert frac == 1.0  # paper: 100% of posit results < 1e-8
        assert 0.0 <= vicar_result.fraction_below("log", -8.0) <= frac

    def test_paper_config_documented(self):
        cfg = paper_config(500_000)
        assert cfg.length == 500_000
        assert cfg.matrices_per_h == 128

    def test_scaled_config_targets_magnitude(self):
        cfg = scaled_config(100_000)
        assert cfg.target_scale == pytest.approx(-580_000, rel=0.01)

    def test_instances_deterministic(self):
        cfg = VicarConfig(length=20, h_values=(3,), matrices_per_h=2, seed=5)
        a = generate_instances(cfg)
        b = generate_instances(cfg)
        assert a[0].observations == b[0].observations
        assert len(a) == 2


@pytest.fixture(scope="module")
def lofreq_result():
    """Columns spanning moderate-to-deep p-values, all four formats."""
    rng = np.random.default_rng(3)
    columns = [
        column_for_target_scale(rng, -50, label="shallow"),
        column_for_target_scale(rng, -400, label="crit1"),
        column_for_target_scale(rng, -1_500, label="crit2"),
        column_for_target_scale(rng, -8_000, label="deep"),
        column_for_target_scale(rng, -40_000, label="deeper"),
    ]
    return columns, run_lofreq(columns, standard_backends(underflow="flush"))


class TestLoFreq:
    def test_binary64_underflows_deep_columns(self, lofreq_result):
        _, res = lofreq_result
        assert res.underflow_count("binary64") >= 3

    def test_posit9_underflows_deepest(self, lofreq_result):
        """posit(64,9)'s range ends at 2**-31744: the -40_000 column must
        underflow in flush mode (the paper counts 132 such columns)."""
        _, res = lofreq_result
        assert res.underflow_count("posit(64,9)") >= 1
        assert res.underflow_count("posit(64,18)") == 0

    def test_posit12_beats_log_on_critical(self, lofreq_result):
        _, res = lofreq_result
        log_err = np.median(res.errors("log", critical=True))
        p12_err = np.median(res.errors("posit(64,12)", critical=True))
        assert p12_err < log_err

    def test_criticality_split(self, lofreq_result):
        columns, res = lofreq_result
        crit = [s for s in res.scores["log"] if s.critical]
        assert len(crit) == 4  # all but the -50 column

    def test_calls_match_truth_for_accurate_formats(self, lofreq_result):
        _, res = lofreq_result
        assert res.call_discordance("posit(64,18)") == 0
        assert res.call_discordance("log") == 0

    def test_underflowed_zero_still_calls(self, lofreq_result):
        """A deep column whose p-value underflows still compares below
        the threshold — the call survives, the p-value does not."""
        _, res = lofreq_result
        deep_scores = [s for s in res.scores["binary64"]
                       if s.result.status == "underflow"]
        assert all(s.called for s in deep_scores)

    def test_errors_by_bin_grouping(self, lofreq_result):
        _, res = lofreq_result
        bins = ((-100_000, -31_744), (-31_744, -1_022), (-1_022, 1))
        grouped = res.errors_by_bin("posit(64,18)", bins)
        assert sum(len(v) for v in grouped.values()) >= 4

    def test_extreme_error_counting(self, lofreq_result):
        _, res = lofreq_result
        # saturating formats are not in this fixture (flush mode), so
        # extreme errors should be rare/absent for posit(64,18).
        assert res.extreme_error_count("posit(64,18)") == 0
