"""The evaluation service end to end: coalescing determinism (coalesced
responses bit-identical to solo execution, per format), ragged requests
that must not coalesce, backpressure, priorities, cache dedupe, stats,
and the error paths."""

import asyncio
import time

import pytest

from repro import faults
from repro.apps.hmm import forward
from repro.data.dirichlet import sample_hmm
from repro.engine.plan import ExecPlan
from repro.nd.context import _default_backend
from repro.service import (
    EvalServer,
    InvalidRequest,
    Microbatcher,
    Overloaded,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ShuttingDown,
    UnknownKind,
    WorkloadRequest,
    execute,
    handler_for,
)
from repro.service.api import decode_bigfloat, encode_value
from repro.service.loadgen import forward_request, model_json
from repro.service.workloads import WorkloadHandler


async def _submit_concurrently(server, requests):
    """One client per request, all in flight at once."""
    async def one(request):
        async with ServiceClient("127.0.0.1", server.port) as client:
            return await client.submit(request)
    return await asyncio.gather(*(one(r) for r in requests))


def _solo_forward_wire(format_name, seed, h=3, m=3, t=10):
    """The bit-exact wire triple of a solo in-process forward()."""
    backend = _default_backend(format_name)
    hmm = sample_hmm(h, m, t, seed=seed)
    return encode_value(backend, forward(hmm, backend))


# Every registered format family: the bit-identical tier (binary64,
# posit, LNS), the certified-fallback tier (n-ary log runs the scalar
# representation under certified=True), and the oracle.
FORMATS = ("binary64", "log", "posit(64,12)", "posit(16,1)",
           "lns(12,50)", "bigfloat128")


class TestCoalescingDeterminism:
    """The tentpole promise: a coalesced response is bit-identical to
    solo execution, for every format."""

    @pytest.mark.parametrize("format_name", FORMATS)
    def test_coalesced_bit_identical_to_solo(self, format_name):
        n = 4
        requests = [forward_request(format_name, 3, 3, 10, seed=i)
                    for i in range(n)]

        async def run():
            # Long window + flush-on-full at n makes coalescing
            # deterministic: the batch flushes the moment all n arrive.
            async with EvalServer(port=0, window_s=0.5, max_batch=n,
                                  cache="off") as server:
                return await _submit_concurrently(server, requests)

        results = asyncio.run(run())
        for i, result in enumerate(results):
            assert result.stats["batch_size"] == n
            assert result.stats["coalesced"] is True
            assert result.values[0] == _solo_forward_wire(format_name, i)

    def test_execute_matches_forward(self):
        result = execute(forward_request("binary64", 4, 4, 16, seed=7))
        assert result.values[0] == _solo_forward_wire("binary64", 7,
                                                      h=4, m=4, t=16)
        assert result.stats["coalesced"] is False

    def test_multi_model_request_coalesces_with_singles(self):
        multi = WorkloadRequest(
            kind="forward", format="binary64",
            payload={"models": [model_json(3, 3, 10, seed=10),
                                model_json(3, 3, 10, seed=11)]})
        single = forward_request("binary64", 3, 3, 10, seed=12)

        async def run():
            async with EvalServer(port=0, window_s=0.5, max_batch=2,
                                  cache="off") as server:
                return await _submit_concurrently(server, [multi, single])

        multi_result, single_result = asyncio.run(run())
        assert multi_result.values == [_solo_forward_wire("binary64", 10),
                                       _solo_forward_wire("binary64", 11)]
        assert single_result.values == [_solo_forward_wire("binary64", 12)]


class TestRaggedRequests:
    """Odd-shaped requests must not coalesce — and must still be
    bit-identical to solo."""

    def test_different_shapes_do_not_coalesce(self):
        requests = [forward_request("binary64", 3, 3, 10, seed=0),
                    forward_request("binary64", 3, 3, 14, seed=1),
                    forward_request("binary64", 4, 3, 10, seed=2)]

        async def run():
            async with EvalServer(port=0, window_s=0.05, max_batch=8,
                                  cache="off") as server:
                return await _submit_concurrently(server, requests)

        results = asyncio.run(run())
        shapes = [(3, 3, 10), (3, 3, 14), (4, 3, 10)]
        for result, (h, m, t), seed in zip(results, shapes, range(3)):
            assert result.stats["batch_size"] == 1
            assert result.stats["coalesced"] is False
            assert result.values[0] == _solo_forward_wire(
                "binary64", seed, h=h, m=m, t=t)

    def test_mixed_shape_multi_model_request_runs_solo(self):
        ragged = WorkloadRequest(
            kind="forward", format="binary64",
            payload={"models": [model_json(3, 3, 10, seed=20),
                                model_json(3, 3, 12, seed=21)]})
        assert handler_for("forward").coalesce_key(ragged) is None

        async def run():
            async with EvalServer(port=0, window_s=0.5, max_batch=8,
                                  cache="off") as server:
                return await _submit_concurrently(server, [ragged])

        (result,) = asyncio.run(run())
        assert result.stats["coalesced"] is False
        assert result.values == [
            _solo_forward_wire("binary64", 20),
            _solo_forward_wire("binary64", 21, t=12)]

    def test_different_formats_do_not_coalesce(self):
        requests = [forward_request("binary64", 3, 3, 10, seed=0),
                    forward_request("posit(16,1)", 3, 3, 10, seed=0)]

        async def run():
            async with EvalServer(port=0, window_s=0.05, max_batch=8,
                                  cache="off") as server:
                return await _submit_concurrently(server, requests)

        for result in asyncio.run(run()):
            assert result.stats["batch_size"] == 1


class TestOtherKindsCoalesce:
    """pbd / op / astype coalesce along their own keys, values still
    bit-identical to solo execute()."""

    def _coalesced(self, requests, max_batch):
        async def run():
            async with EvalServer(port=0, window_s=0.5,
                                  max_batch=max_batch,
                                  cache="off") as server:
                return await _submit_concurrently(server, requests)
        return asyncio.run(run())

    def test_pbd(self):
        def req(seed):
            probs = [0.05 * (seed + 1), 0.1, 0.2, 0.15]
            return WorkloadRequest(kind="pbd", format="posit(64,12)",
                                   payload={"sites": [probs], "k": 2})
        requests = [req(0), req(1)]
        results = self._coalesced(requests, 2)
        for request, result in zip(requests, results):
            assert result.stats["coalesced"] is True
            assert result.values == execute(request).values

    def test_op_different_lengths_still_coalesce(self):
        a = WorkloadRequest(kind="op", format="lns(12,50)",
                            payload={"op": "mul", "a": [0.5, 0.25],
                                     "b": [0.125, 0.75]})
        b = WorkloadRequest(kind="op", format="lns(12,50)",
                            payload={"op": "mul", "a": [0.9],
                                     "b": [0.3]})
        results = self._coalesced([a, b], 2)
        for request, result in zip([a, b], results):
            assert result.stats["coalesced"] is True
            assert result.values == execute(request).values

    def test_astype(self):
        def req(values):
            return WorkloadRequest(kind="astype", format="binary64",
                                   payload={"to": "posit(16,1)",
                                            "values": values})
        requests = [req([0.3, 0.7]), req([1e-30])]
        results = self._coalesced(requests, 2)
        for request, result in zip(requests, results):
            assert result.stats["coalesced"] is True
            assert result.values == execute(request).values

    def test_op_does_not_coalesce_across_ops(self):
        add = WorkloadRequest(kind="op", format="binary64",
                              payload={"op": "add", "a": [1.0],
                                       "b": [2.0]})
        mul = WorkloadRequest(kind="op", format="binary64",
                              payload={"op": "mul", "a": [1.0],
                                       "b": [2.0]})
        h = handler_for("op")
        assert h.coalesce_key(add) != h.coalesce_key(mul)


class TestBackpressure:
    def test_http_429_when_queue_full(self):
        async def run():
            async with EvalServer(port=0, window_s=0.4, max_batch=64,
                                  max_queue=1, cache="off") as server:
                async with ServiceClient("127.0.0.1",
                                         server.port) as c1, \
                        ServiceClient("127.0.0.1", server.port) as c2:
                    first = asyncio.ensure_future(c1.submit(
                        forward_request("binary64", 3, 3, 10, seed=0)))
                    await asyncio.sleep(0.05)  # first now holds the slot
                    with pytest.raises(Overloaded):
                        await c2.submit(
                            forward_request("binary64", 3, 3, 10, seed=1))
                    result = await first
                    assert result.values[0] == _solo_forward_wire(
                        "binary64", 0)
        asyncio.run(run())

    def test_overloaded_carries_429(self):
        assert Overloaded("x").http_status == 429


class _StubHandler(WorkloadHandler):
    """Deterministic scheduler probe: records execution order."""

    kind = "stub"

    def __init__(self, key=None, fail_batches=False, sleep_s=0.0):
        self.key = key
        self.fail_batches = fail_batches
        self.sleep_s = sleep_s
        self.batches = []

    def validate(self, request):
        pass

    def coalesce_key(self, request):
        return self.key

    def run_batch(self, requests, plan=None):
        self.batches.append([r.request_id for r in requests])
        if self.fail_batches and len(requests) > 1:
            raise RuntimeError("poisoned batch")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        return [([r.request_id], {}) for r in requests]


class TestScheduler:
    def test_priorities_drain_highest_first(self):
        handler = _StubHandler(sleep_s=0.03)

        async def run():
            batcher = Microbatcher(window_s=0.0, max_batch=1,
                                   max_queue=64)

            def req(rid, priority):
                return WorkloadRequest(kind="stub", priority=priority,
                                       request_id=rid)

            first = asyncio.ensure_future(
                batcher.submit(handler, req("warmup", 0)))
            await asyncio.sleep(0.01)  # warmup is executing
            rest = [asyncio.ensure_future(batcher.submit(handler, r))
                    for r in (req("low", 0), req("high", 5),
                              req("mid", 2))]
            await asyncio.gather(first, *rest)
            await batcher.stop()

        asyncio.run(run())
        assert [b[0] for b in handler.batches] == \
            ["warmup", "high", "mid", "low"]

    def test_flush_on_full_preempts_window(self):
        handler = _StubHandler(key=("stub",))

        async def run():
            batcher = Microbatcher(window_s=30.0, max_batch=3,
                                   max_queue=64)
            results = await asyncio.gather(*(
                batcher.submit(handler,
                               WorkloadRequest(kind="stub",
                                               request_id=f"r{i}"))
                for i in range(3)))
            await batcher.stop()
            return results

        results = asyncio.run(run())  # returns => no 30s window wait
        assert handler.batches == [["r0", "r1", "r2"]]
        assert all(stats["batch_size"] == 3 for _values, stats in results)

    def test_poisoned_batch_falls_back_to_solo(self):
        handler = _StubHandler(key=("stub",), fail_batches=True)

        async def run():
            batcher = Microbatcher(window_s=30.0, max_batch=2,
                                   max_queue=64)
            results = await asyncio.gather(*(
                batcher.submit(handler,
                               WorkloadRequest(kind="stub",
                                               request_id=f"r{i}"))
                for i in range(2)))
            await batcher.stop()
            return results

        results = asyncio.run(run())
        assert [values for values, _stats in results] == [["r0"], ["r1"]]
        assert all(stats["batch_size"] == 1 for _values, stats in results)
        # One failed coalesced attempt, then two solo retries.
        assert handler.batches[0] == ["r0", "r1"]
        assert sorted(map(tuple, handler.batches[1:])) == \
            [("r0",), ("r1",)]

    def test_stop_fails_pending_with_shutting_down(self):
        handler = _StubHandler(key=("stub",))

        async def run():
            batcher = Microbatcher(window_s=30.0, max_batch=8,
                                   max_queue=64)
            pending = asyncio.ensure_future(
                batcher.submit(handler, WorkloadRequest(kind="stub")))
            await asyncio.sleep(0.01)
            await batcher.stop()
            with pytest.raises(ShuttingDown):
                await pending
            with pytest.raises(ShuttingDown):
                await batcher.submit(handler,
                                     WorkloadRequest(kind="stub"))

        asyncio.run(run())


class TestCacheDedupe:
    def test_repeat_request_served_from_cache(self, tmp_path):
        request = forward_request("binary64", 3, 3, 10, seed=5)

        async def run():
            async with EvalServer(port=0, window_s=0.0, cache="auto",
                                  cache_dir=str(tmp_path)) as server:
                async with ServiceClient("127.0.0.1",
                                         server.port) as client:
                    first = await client.submit(request)
                    second = await client.submit(request)
            return first, second

        first, second = asyncio.run(run())
        assert "cached" not in first.stats
        assert second.stats["cached"] is True
        assert second.values == first.values

    def test_plan_cache_off_disables_dedupe(self, tmp_path):
        request = WorkloadRequest(
            kind="forward", format="binary64",
            payload={"models": [model_json(3, 3, 10, seed=6)]},
            plan=ExecPlan(cache="off"))

        async def run():
            async with EvalServer(port=0, window_s=0.0, cache="auto",
                                  cache_dir=str(tmp_path)) as server:
                async with ServiceClient("127.0.0.1",
                                         server.port) as client:
                    await client.submit(request)
                    return await client.submit(request)

        second = asyncio.run(run())
        assert "cached" not in second.stats


class TestErrorPaths:
    def _server_run(self, coro_factory):
        async def run():
            async with EvalServer(port=0, window_s=0.0,
                                  cache="off") as server:
                async with ServiceClient("127.0.0.1",
                                         server.port) as client:
                    return await coro_factory(client)
        return asyncio.run(run())

    def test_unknown_kind_is_400(self):
        with pytest.raises(UnknownKind, match="spectral"):
            self._server_run(lambda c: c.submit(
                WorkloadRequest(kind="spectral")))

    def test_invalid_payload_is_400(self):
        with pytest.raises(InvalidRequest, match="models"):
            self._server_run(lambda c: c.submit(
                WorkloadRequest(kind="forward", format="binary64",
                                payload={"models": []})))

    def test_unknown_format_is_400(self):
        with pytest.raises(InvalidRequest, match="quaternion64"):
            self._server_run(lambda c: c.submit(
                WorkloadRequest(kind="forward", format="quaternion64",
                                payload={"models": [
                                    model_json(3, 3, 10, seed=0)]})))

    def test_unknown_field_is_protocol_error(self):
        async def bad(client):
            status, payload = await client._round_trip(
                "POST", "/v1/workload",
                {"kind": "forward", "postel_mode": True})
            return status, payload
        status, payload = self._server_run(bad)
        assert status == 400
        assert payload["error"]["code"] == "bad-request"
        assert "postel_mode" in payload["error"]["message"]

    def test_malformed_json_is_400(self):
        async def bad(client):
            await client.connect()
            body = b"{not json"
            client._writer.write(
                (f"POST /v1/workload HTTP/1.1\r\n"
                 f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
            return await client._read_response()
        status, payload = self._server_run(bad)
        assert status == 400
        assert "JSON" in payload["error"]["message"]

    def test_unknown_route_is_404(self):
        async def bad(client):
            return await client._round_trip("GET", "/v2/everything", None)
        status, payload = self._server_run(bad)
        assert status == 404
        assert "/v1/workload" in payload["error"]["message"]


class TestStatsAndHealth:
    def test_stats_reflect_traffic_and_telemetry(self):
        async def run():
            async with EvalServer(port=0, window_s=0.5, max_batch=3,
                                  cache="off") as server:
                requests = [forward_request("binary64", 3, 3, 10, seed=i)
                            for i in range(3)]
                await _submit_concurrently(server, requests)
                async with ServiceClient("127.0.0.1",
                                         server.port) as client:
                    health = await client.healthz()
                    stats = await client.stats()
            return health, stats

        health, stats = asyncio.run(run())
        assert health["ok"] is True
        assert stats["requests"] >= 3
        assert stats["coalescing"]["factor"] == 3.0
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] > 0
        counters = stats["telemetry"]["counters"]
        assert counters["service.batches"] == 1
        assert counters["service.coalesced_requests"] == 3
        assert counters["service.http.requests"] >= 3
        # Kernel-level telemetry from the executor thread merged in.
        assert any(name.startswith("nd.") for name in counters)
        assert "service.batch_wait" in stats["telemetry"]["spans"]


class TestExperimentKind:
    def test_experiment_request_runs_through_service(self):
        result = execute(WorkloadRequest(
            kind="experiment",
            payload={"experiment_id": "table1", "use_cache": False}))
        assert "posit(64,12)" in result.values[0]
        assert result.stats["cached"] is False

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidRequest, match="fig99"):
            execute(WorkloadRequest(kind="experiment",
                                    payload={"experiment_id": "fig99"}))

    def test_bad_scale_rejected(self):
        with pytest.raises(InvalidRequest, match="scale"):
            execute(WorkloadRequest(
                kind="experiment",
                payload={"experiment_id": "table1", "scale": "huge"}))


class TestServiceErrorHierarchy:
    def test_every_service_error_maps_to_itself(self):
        for exc in (ProtocolError("x"), Overloaded("x"),
                    ServiceError("x")):
            assert isinstance(exc, ServiceError)


class TestResilience:
    """PR 10: fault sites pinned through a real server — poisoned
    batches fall back to solo with exact values, queued requests aged
    past the server deadline are shed as typed 503s, and dropped
    connections are healed by client retries.  Plans are injected
    ``globally`` because the scheduler's executor thread and the
    connection tasks never inherit the test's contextvars."""

    def test_poisoned_batch_still_answers_exactly(self):
        n = 2
        requests = [forward_request("binary64", 3, 3, 10, seed=i)
                    for i in range(n)]
        plan = faults.FaultPlan([faults.FaultRule("service.batch",
                                                  at=(0,))])

        async def run():
            async with EvalServer(port=0, window_s=0.5, max_batch=n,
                                  cache="off") as server:
                return await _submit_concurrently(server, requests)

        with faults.inject(plan, globally=True):
            results = asyncio.run(run())
        assert plan.fired == [("service.batch", 0, "error")]
        for i, result in enumerate(results):
            # The coalesced attempt died; the solo fallback answered
            # with the exact solo wire values.
            assert result.stats["batch_size"] == 1
            assert result.values[0] == _solo_forward_wire("binary64", i)

    def test_queued_request_aged_past_deadline_is_shed(self):
        from repro.service.api import DeadlineExceeded
        plan = faults.FaultPlan([faults.FaultRule(
            "service.batch", mode="delay", at=(0,), delay_s=0.5)])

        async def run():
            async with EvalServer(port=0, window_s=0.0, max_batch=1,
                                  deadline_s=0.1,
                                  cache="off") as server:
                async def one(seed, **kwargs):
                    client = ServiceClient("127.0.0.1", server.port,
                                           **kwargs)
                    async with client:
                        return await client.submit(
                            forward_request("binary64", 3, 3, 10,
                                            seed=seed))
                # First request holds the (single-lane) executor for
                # 0.5s; the second ages out in the queue.
                stalled = asyncio.ensure_future(one(0))
                await asyncio.sleep(0.05)
                with pytest.raises(DeadlineExceeded) as err:
                    await one(1, retries=0)
                first = await stalled
                return first, err.value, server.stats()

        with faults.inject(plan, globally=True):
            first, exc, stats = asyncio.run(run())
        assert exc.http_status == 503
        assert exc.code == "deadline-exceeded"
        assert stats["telemetry"]["counters"]["service.shed"] == 1
        # The stalled request itself still answered exactly.
        assert first.values[0] == _solo_forward_wire("binary64", 0)

    def test_dropped_connection_is_healed_by_retry(self):
        plan = faults.FaultPlan([faults.FaultRule("service.connection",
                                                  at=(0,))])

        async def run():
            async with EvalServer(port=0, window_s=0.0, max_batch=1,
                                  cache="off") as server:
                client = ServiceClient("127.0.0.1", server.port,
                                       retries=2, backoff_s=0.01)
                async with client:
                    result = await client.submit(
                        forward_request("binary64", 3, 3, 10, seed=0))
                return result, server.stats()

        with faults.inject(plan, globally=True):
            result, stats = asyncio.run(run())
        # The answer was computed, then the socket died before the
        # bytes went out; the retried request answered exactly.
        counters = stats["telemetry"]["counters"]
        assert counters["service.dropped_connections"] == 1
        assert result.values[0] == _solo_forward_wire("binary64", 0)

    def test_connect_retries_ride_out_a_late_server(self):
        import random
        import socket

        from repro import telemetry

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here until the server starts

        async def run():
            async def late_client():
                client = ServiceClient(
                    "127.0.0.1", port, connect_retries=20,
                    backoff_s=0.05, backoff_max_s=0.1,
                    rng=random.Random(0))
                with telemetry.collect() as col:
                    async with client:
                        result = await client.submit(
                            forward_request("binary64", 3, 3, 10,
                                            seed=0))
                return result, col.counters.get("client.connect_retries",
                                                0)

            task = asyncio.ensure_future(late_client())
            await asyncio.sleep(0.25)
            async with EvalServer(port=port, window_s=0.0, max_batch=1,
                                  cache="off"):
                return await task

        result, retried = asyncio.run(run())
        assert retried >= 1
        assert result.values[0] == _solo_forward_wire("binary64", 0)
