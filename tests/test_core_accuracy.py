"""Tests for per-op accuracy measurement and the bit-budget model."""

import math

import pytest

from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.bigfloat import BigFloat
from repro.core import (
    UNDERFLOW,
    measure_op,
    score_log10,
    score_value,
    ulp_relative_error,
)
from repro.core.bitbudget import (
    binary64_effective_bits,
    budget_curves,
    logspace_effective_bits,
    posit_effective_bits,
    predicted_log10_error,
)
from repro.formats import PositEnv, Real


class TestMeasureOp:
    def test_binary64_add_is_half_ulp(self):
        backend = Binary64Backend()
        x = Real.from_float(1.0)
        y = Real.from_float(1e-8)
        res = measure_op(backend, "add", x, y)
        assert res.ok
        # RNE add error is bounded by half an ulp: log10 err <= -15.9
        assert res.log10_error <= math.log10(2 ** -53)

    def test_binary64_underflow_detected(self):
        backend = Binary64Backend()
        x = Real(0, 1, -600)
        y = Real(0, 1, -600)
        res = measure_op(backend, "mul", x, y)
        assert res.status == UNDERFLOW

    def test_exact_result_gets_floor(self):
        backend = Binary64Backend()
        res = measure_op(backend, "add", Real.from_float(0.25), Real.from_float(0.5))
        assert res.ok and res.log10_error == -400.0

    def test_zero_exact_raises(self):
        backend = Binary64Backend()
        x = Real.from_float(1.0)
        with pytest.raises(ValueError):
            measure_op(backend, "add", x, x.neg())

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            measure_op(Binary64Backend(), "div", Real.from_float(1.0), Real.from_float(2.0))

    def test_logspace_small_magnitude_penalty(self):
        """The headline claim: at tiny magnitudes the log representation
        is *less* accurate than posit(64,12)."""
        log_b = LogSpaceBackend()
        posit_b = PositBackend(PositEnv(64, 12))
        x = Real(0, (1 << 79) + 12345, -9_000 - 79)
        y = Real(0, (1 << 79) + 54321, -9_001 - 79)
        log_err = measure_op(log_b, "add", x, y).log10_error
        posit_err = measure_op(posit_b, "add", x, y).log10_error
        assert posit_err < log_err

    def test_posit_flush_underflow(self):
        backend = PositBackend(PositEnv(64, 9, underflow="flush"))
        x = Real(0, 1, -20_000)
        res = measure_op(backend, "mul", x, x)
        assert res.status == UNDERFLOW

    def test_posit_saturate_has_huge_error_not_underflow(self):
        backend = PositBackend(PositEnv(64, 9, underflow="saturate"))
        x = Real(0, 1, -20_000)
        res = measure_op(backend, "mul", x, x)
        assert res.ok
        assert res.log10_error > 100  # saturated at minpos, far from truth


class TestScoreValue:
    def test_score_log10_collapses_underflow(self):
        backend = Binary64Backend()
        truth = BigFloat.exp2(-2000)
        assert score_log10(backend, 0.0, truth) == 400.0

    def test_score_value_zero_exact_zero(self):
        backend = Binary64Backend()
        res = score_value(backend, 0.0, BigFloat.zero())
        assert res.ok

    def test_ulp_relative_error(self):
        assert ulp_relative_error(52) == 2.0 ** -53


class TestBitBudget:
    def test_binary64_flat_in_normal_range(self):
        assert binary64_effective_bits(-1) == 52.0
        assert binary64_effective_bits(-1022) == 52.0

    def test_binary64_subnormal_decay(self):
        assert binary64_effective_bits(-1030) == 44.0
        assert binary64_effective_bits(-1074) == 0.0
        assert binary64_effective_bits(-1100) is None

    def test_binary64_overflow(self):
        assert binary64_effective_bits(2000) is None

    def test_posit_budget_matches_env(self):
        env = PositEnv(64, 9)
        assert posit_effective_bits(env, -2048) == 49.0
        assert posit_effective_bits(env, -40_000) is None

    def test_logspace_decays_inside_normal_range(self):
        """Section II.C: log-space loses precision long before binary64's
        range runs out."""
        near_one = logspace_effective_bits(-10)
        mid = logspace_effective_bits(-600)
        deep = logspace_effective_bits(-9000)
        assert near_one > mid > deep

    def test_logspace_at_paper_example(self):
        # lx ~ -402: log2(402) ~ 8.65 -> ~44 effective bits, i.e. ~8 bits
        # of precision spent on encoding the exponent.
        bits = logspace_effective_bits(-581)
        assert 43 <= bits <= 45

    def test_predicted_error_ordering_matches_measured(self):
        """The bit-budget model must predict the measured Figure 3
        ordering at a deep-magnitude point."""
        scale = -9000
        env12 = PositEnv(64, 12)
        log_pred = predicted_log10_error(logspace_effective_bits(scale))
        posit_pred = predicted_log10_error(posit_effective_bits(env12, scale))
        assert posit_pred < log_pred

    def test_budget_curves_shape(self):
        curves = budget_curves(range(-100, 1, 10))
        assert set(curves) == {"binary64", "log", "posit(64,9)",
                               "posit(64,12)", "posit(64,18)"}
        for series in curves.values():
            assert len(series) == 11

    def test_predicted_none_passthrough(self):
        assert predicted_log10_error(None) is None
