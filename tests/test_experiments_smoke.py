"""Every figure/table module must run end-to-end at tiny sizes.

Discovery is glob-based (``repro.experiments.fig*``/``table*``), not
registry-based, so a newly added figure module cannot silently rot: it
either registers and passes the smoke run, or this suite fails loudly
telling the author to register it.
"""

import inspect
import pkgutil

import pytest

import repro.experiments as experiments_pkg
from repro.experiments.runner import REGISTRY

#: Keyword overrides that keep non-``scale`` modules tiny in a smoke run.
TINY_KWARGS = {
    "n_datasets": 2,
    "t": 5_000,
}


def _discover_modules():
    return sorted(
        name for _finder, name, _ispkg
        in pkgutil.iter_modules(experiments_pkg.__path__)
        if name.startswith(("fig", "table")))


MODULES = _discover_modules()


def test_discovery_found_the_suite():
    """Guards the discovery itself (an empty glob would vacuously pass)."""
    assert len(MODULES) >= 12
    assert "fig3_op_accuracy" in MODULES
    assert "table1_range" in MODULES


def test_every_figure_module_is_registered():
    registered = {exp.run.__module__.rsplit(".", 1)[-1]
                  for exp in REGISTRY.values()}
    missing = [m for m in MODULES if m not in registered]
    assert not missing, (
        f"experiment modules not in the runner REGISTRY: {missing}")


@pytest.mark.parametrize("module_name", MODULES)
def test_module_runs_end_to_end(module_name):
    """Import, run at the smallest supported size, and render."""
    module = __import__(f"repro.experiments.{module_name}",
                        fromlist=[module_name])
    assert hasattr(module, "run") and hasattr(module, "render"), module_name
    params = inspect.signature(module.run).parameters
    kwargs = {}
    if "scale" in params:
        kwargs["scale"] = "test"
    for name, value in TINY_KWARGS.items():
        if name in params:
            kwargs[name] = value
    result = module.run(**kwargs)
    text = module.render(result)
    assert isinstance(text, str) and text.strip(), module_name
