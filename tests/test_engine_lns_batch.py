"""BatchLNS vs the scalar LNSEnv/LNSBackend: element-exact, always.

Exhaustive at small widths (every code pair, zero included), seeded
property sampling at the full 64-bit configuration, plus the fold and
kernel plumbing contracts.
"""

import itertools

import numpy as np
import pytest

from repro.arith.backends import LNSBackend
from repro.bigfloat import BigFloat
from repro.engine import BatchLNS, batch_backend_for
from repro.engine.lns_batch import ZERO_CODE
from repro.formats.lns import LNS_ZERO, LNSEnv


def _all_values(env):
    return [LNS_ZERO] + list(range(env.min_code, env.max_code + 1))


@pytest.mark.parametrize("int_bits,frac_bits", [(2, 2), (3, 2), (4, 3)])
def test_exhaustive_small_width(int_bits, frac_bits):
    env = LNSEnv(int_bits, frac_bits)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    values = _all_values(env)
    pairs = list(itertools.product(values, values))
    a = np.array([batch._to_code(x) for x, _ in pairs], dtype=np.int64)
    b = np.array([batch._to_code(y) for _, y in pairs], dtype=np.int64)
    got_add = batch.add(a, b)
    got_mul = batch.mul(a, b)
    for i, (x, y) in enumerate(pairs):
        assert batch.item(got_add, i) == scalar.add(x, y), (x, y)
        assert batch.item(got_mul, i) == scalar.mul(x, y), (x, y)


def test_property_full_width():
    """lns(12,50) — the repo's default 64-bit LNS — on a seeded sample
    covering balanced adds, deep gaps, saturation edges and zeros."""
    env = LNSEnv(12, 50)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    rng = np.random.default_rng(0)
    edges = [env.min_code, env.min_code + 1, -1, 0, 1,
             env.max_code - 1, env.max_code]
    codes = list(rng.integers(env.min_code, env.max_code + 1, size=60))
    near = [int(c) for c in rng.integers(-(1 << 52), 1 << 52, size=60)]
    pool = [int(c) for c in codes] + near + edges + [None, None]
    rng.shuffle(pool)
    xs = [LNS_ZERO if v is None else v for v in pool]
    ys = list(reversed(xs))
    a = np.array([batch._to_code(x) for x in xs], dtype=np.int64)
    b = np.array([batch._to_code(y) for y in ys], dtype=np.int64)
    got_add = batch.add(a, b)
    got_mul = batch.mul(a, b)
    for i, (x, y) in enumerate(zip(xs, ys)):
        assert batch.item(got_add, i) == scalar.add(x, y), (x, y)
        assert batch.item(got_mul, i) == scalar.mul(x, y), (x, y)


def test_sb_shortcuts_match_exact():
    """The vectorized sb shortcuts (d == 0, certified rounds-to-zero
    floor) must agree with the oracle-backed scalar sb."""
    env = LNSEnv(6, 8)
    batch = BatchLNS(env)
    floor = int(batch._sb_floor)
    for d in (0, -1, floor + 1, floor, floor - 1, 4 * floor):
        got = int(batch._sb_codes(np.array([d], dtype=np.int64))[0])
        assert got == env._sb_exact(d), d
    # The certified region never reaches the memo.
    assert all(k > floor for k in batch._sb_cache if k < 0)


def test_sb_memo_reused_across_calls():
    env = LNSEnv(12, 50)
    batch = BatchLNS(env)
    d = np.array([-12345, -67890, -12345], dtype=np.int64)
    first = batch._sb_codes(d)
    size = batch.sb_cache_size()
    second = batch._sb_codes(d)
    assert batch.sb_cache_size() == size  # no recomputation
    assert (first == second).all()


def test_sum_matches_scalar_fold():
    env = LNSEnv(8, 20)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    rng = np.random.default_rng(1)
    rows = [[int(c) for c in rng.integers(-(1 << 24), 1 << 24, size=6)]
            for _ in range(4)]
    rows[1][2] = None  # a zero in the middle of the fold
    arr = np.array([[ZERO_CODE if v is None else v for v in row]
                    for row in rows], dtype=np.int64)
    got = batch.sum(arr, axis=1)
    for i, row in enumerate(rows):
        want = scalar.sum(LNS_ZERO if v is None else v for v in row)
        assert batch.item(got, i) == want


def test_conversions_and_identities():
    env = LNSEnv(12, 50)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    probs = [0.5, 1.0, 1e-300, 0.0, 3.25]
    arr = batch.from_floats(probs)
    for i, p in enumerate(probs):
        assert batch.item(arr, i) == scalar.from_float(p)
    bfs = [BigFloat.from_float(p) for p in probs]
    arr2 = batch.from_bigfloats(bfs)
    assert (arr == arr2).all()
    assert batch.is_zero(arr).tolist() == [False, False, False, True, False]
    assert (batch.ones(3) == 0).all()
    assert batch.is_zero(batch.zeros(3)).all()


def test_factory_and_guards():
    scalar = LNSBackend()
    bb = batch_backend_for(scalar)
    assert isinstance(bb, BatchLNS)
    assert bb.scalar is scalar and bb.env is scalar.env
    assert bb.name == scalar.name
    with pytest.raises(ValueError):
        BatchLNS(LNSEnv(12, 52))  # codes would overflow int64 sums
    with pytest.raises(ValueError):
        BatchLNS(LNSEnv(2, 2), scalar=LNSBackend(LNSEnv(3, 2)))


def test_forward_batch_routes_lns_through_engine():
    """apps.forward_batch now vectorizes LNS (it used to be a scalar
    fallback format) — and stays bit-for-bit with the scalar forward."""
    from repro.apps.hmm import forward, forward_batch
    from repro.data.dirichlet import sample_hcg_like_hmm
    hmm = sample_hcg_like_hmm(4, 10, seed=2, bits_per_step=120.0)
    obs = np.array([hmm.observations, hmm.observations[::-1]])
    backend = LNSBackend()
    got = forward_batch(hmm, backend, obs)
    want = [forward(hmm, backend, observations=tuple(int(o) for o in row))
            for row in obs]
    assert got == want


def _valid_sub_pairs(values):
    return [(x, y) for x, y in itertools.product(values, values)
            if y == LNS_ZERO or (x != LNS_ZERO and y <= x)]


@pytest.mark.parametrize("int_bits,frac_bits", [(2, 2), (3, 2), (4, 3)])
@pytest.mark.parametrize("table", [True, False], ids=["table", "memo"])
def test_exhaustive_small_width_sub_div(int_bits, frac_bits, table):
    """Every valid code pair for the new native sub and div, in both
    gap-store modes, element-exact against the scalar backend."""
    env = LNSEnv(int_bits, frac_bits)
    scalar = LNSBackend(env)
    batch = BatchLNS(env, sb_table=table)
    assert batch._table_mode == table
    values = _all_values(env)
    pairs = _valid_sub_pairs(values)
    a = np.array([batch._to_code(x) for x, _ in pairs], dtype=np.int64)
    b = np.array([batch._to_code(y) for _, y in pairs], dtype=np.int64)
    got_sub = batch.sub(a, b)
    for i, (x, y) in enumerate(pairs):
        assert batch.item(got_sub, i) == scalar.sub(x, y), (x, y)
    pairs_d = [(x, y) for x, y in itertools.product(values, values)
               if y != LNS_ZERO]
    a = np.array([batch._to_code(x) for x, _ in pairs_d], dtype=np.int64)
    b = np.array([batch._to_code(y) for _, y in pairs_d], dtype=np.int64)
    got_div = batch.div(a, b)
    for i, (x, y) in enumerate(pairs_d):
        assert batch.item(got_div, i) == scalar.div(x, y), (x, y)


@pytest.mark.parametrize("int_bits,frac_bits", [(2, 2), (3, 2), (4, 3)])
def test_table_mode_equals_memo_mode(int_bits, frac_bits):
    """The lazily built full sb/db tables must agree entry-for-entry
    with the memoized per-gap evaluation (same exact BigFloat plane)."""
    env = LNSEnv(int_bits, frac_bits)
    bt = BatchLNS(env, sb_table=True)
    floor = int(bt._sb_floor)
    gaps = np.arange(-1, floor, -1, dtype=np.int64)
    bm = BatchLNS(env, sb_table=False)
    assert (bt._sb_codes(gaps) == bm._sb_codes(gaps)).all()
    assert (bt._db_codes(gaps) == bm._db_codes(gaps)).all()
    # Table sizes: one entry per interior gap, both tables built.
    assert bt.sb_cache_size() == 2 * (-floor - 1)
    # And both agree with the scalar oracle entry-for-entry.
    for d in (-1, floor // 2, floor + 1):
        assert int(bt._sb_codes(np.array([d]))[0]) == env._sb_exact(d)
        assert int(bt._db_codes(np.array([d]))[0]) == \
            max(env._db_exact(d), bt._db_clamp)


def test_default_auto_mode_selection():
    """auto: full table only for small formats whose build is
    sub-second (<= SB_TABLE_AUTO_MAX oracle calls); mid-size formats
    keep the memo unless the caller opts into the one-time build; and
    a forced table beyond the SB_TABLE_MAX memory bound is refused
    (lns(12,50)'s gap domain is astronomically larger — the paper's
    Section VII point)."""
    assert BatchLNS(LNSEnv(4, 3))._table_mode
    mid = LNSEnv(6, 15)  # 557k entries: affordable memory, slow build
    assert mid.sb_table_entries() <= BatchLNS.SB_TABLE_MAX
    assert not BatchLNS(mid)._table_mode
    assert BatchLNS(mid, sb_table=True)._table_mode  # opt-in allowed
    big = BatchLNS(LNSEnv(12, 50))
    assert not big._table_mode
    assert LNSEnv(12, 50).sb_table_entries() > BatchLNS.SB_TABLE_MAX
    with pytest.raises(ValueError, match="SB_TABLE_MAX"):
        BatchLNS(LNSEnv(12, 50), sb_table=True)


def test_sub_domain_and_zero_semantics():
    env = LNSEnv(4, 3)
    scalar = LNSBackend(env)
    batch = BatchLNS(env)
    a = np.array([5, 5, batch._to_code(LNS_ZERO)], dtype=np.int64)
    # b > a on a live lane -> the scalar ValueError, vectorized.
    with pytest.raises(ValueError):
        batch.sub(a, np.array([1, 7, 1], dtype=np.int64))
    with pytest.raises(ValueError):
        scalar.sub(5, 7)
    # a == b -> exact probability zero; b == zero -> a unchanged.
    out = batch.sub(np.array([5, 5], dtype=np.int64),
                    np.array([5, batch._to_code(LNS_ZERO)], dtype=np.int64))
    assert batch.item(out, 0) == LNS_ZERO
    assert batch.item(out, 1) == 5
    # Deep-gap subtraction saturates at min_code exactly like scalar.
    got = batch.sub(np.array([env.min_code + 1], dtype=np.int64),
                    np.array([env.min_code], dtype=np.int64))
    assert batch.item(got, 0) == scalar.sub(env.min_code + 1, env.min_code)


def test_div_zero_raises_like_scalar():
    env = LNSEnv(4, 3)
    batch = BatchLNS(env)
    scalar = LNSBackend(env)
    with pytest.raises(ZeroDivisionError):
        batch.div(np.array([3], dtype=np.int64),
                  np.array([ZERO_CODE], dtype=np.int64))
    with pytest.raises(ZeroDivisionError):
        scalar.div(3, LNS_ZERO)
    out = batch.div(np.array([ZERO_CODE], dtype=np.int64),
                    np.array([3], dtype=np.int64))
    assert batch.item(out, 0) == LNS_ZERO


def test_property_full_width_sub():
    """lns(12,50) sub (memo mode) on sampled valid pairs: balanced,
    near-cancelling, saturating, and zero operands."""
    env = LNSEnv(12, 50)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    rng = np.random.default_rng(7)
    xs = [int(v) for v in rng.integers(env.min_code, env.max_code, 50)]
    near = [(x, x - int(g)) for x, g in
            zip(xs[:20], rng.integers(1, 1 << 52, 20))]
    pairs = ([(max(x, y), min(x, y)) for x, y in zip(xs, reversed(xs))]
             + near
             + [(x, x) for x in xs[:5]]
             + [(x, LNS_ZERO) for x in xs[:5]])
    a = np.array([batch._to_code(x) for x, _ in pairs], dtype=np.int64)
    b = np.array([batch._to_code(y) for _, y in pairs], dtype=np.int64)
    got = batch.sub(a, b)
    for i, (x, y) in enumerate(pairs):
        assert batch.item(got, i) == scalar.sub(x, y), (x, y)
