"""BatchLNS vs the scalar LNSEnv/LNSBackend: element-exact, always.

Exhaustive at small widths (every code pair, zero included), seeded
property sampling at the full 64-bit configuration, plus the fold and
kernel plumbing contracts.
"""

import itertools

import numpy as np
import pytest

from repro.arith.backends import LNSBackend
from repro.bigfloat import BigFloat
from repro.engine import BatchLNS, batch_backend_for
from repro.engine.lns_batch import ZERO_CODE
from repro.formats.lns import LNS_ZERO, LNSEnv


def _all_values(env):
    return [LNS_ZERO] + list(range(env.min_code, env.max_code + 1))


@pytest.mark.parametrize("int_bits,frac_bits", [(2, 2), (3, 2), (4, 3)])
def test_exhaustive_small_width(int_bits, frac_bits):
    env = LNSEnv(int_bits, frac_bits)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    values = _all_values(env)
    pairs = list(itertools.product(values, values))
    a = np.array([batch._to_code(x) for x, _ in pairs], dtype=np.int64)
    b = np.array([batch._to_code(y) for _, y in pairs], dtype=np.int64)
    got_add = batch.add(a, b)
    got_mul = batch.mul(a, b)
    for i, (x, y) in enumerate(pairs):
        assert batch.item(got_add, i) == scalar.add(x, y), (x, y)
        assert batch.item(got_mul, i) == scalar.mul(x, y), (x, y)


def test_property_full_width():
    """lns(12,50) — the repo's default 64-bit LNS — on a seeded sample
    covering balanced adds, deep gaps, saturation edges and zeros."""
    env = LNSEnv(12, 50)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    rng = np.random.default_rng(0)
    edges = [env.min_code, env.min_code + 1, -1, 0, 1,
             env.max_code - 1, env.max_code]
    codes = list(rng.integers(env.min_code, env.max_code + 1, size=60))
    near = [int(c) for c in rng.integers(-(1 << 52), 1 << 52, size=60)]
    pool = [int(c) for c in codes] + near + edges + [None, None]
    rng.shuffle(pool)
    xs = [LNS_ZERO if v is None else v for v in pool]
    ys = list(reversed(xs))
    a = np.array([batch._to_code(x) for x in xs], dtype=np.int64)
    b = np.array([batch._to_code(y) for y in ys], dtype=np.int64)
    got_add = batch.add(a, b)
    got_mul = batch.mul(a, b)
    for i, (x, y) in enumerate(zip(xs, ys)):
        assert batch.item(got_add, i) == scalar.add(x, y), (x, y)
        assert batch.item(got_mul, i) == scalar.mul(x, y), (x, y)


def test_sb_shortcuts_match_exact():
    """The vectorized sb shortcuts (d == 0, certified rounds-to-zero
    floor) must agree with the oracle-backed scalar sb."""
    env = LNSEnv(6, 8)
    batch = BatchLNS(env)
    floor = int(batch._sb_floor)
    for d in (0, -1, floor + 1, floor, floor - 1, 4 * floor):
        got = int(batch._sb_codes(np.array([d], dtype=np.int64))[0])
        assert got == env._sb_exact(d), d
    # The certified region never reaches the memo.
    assert all(k > floor for k in batch._sb_cache if k < 0)


def test_sb_memo_reused_across_calls():
    env = LNSEnv(12, 50)
    batch = BatchLNS(env)
    d = np.array([-12345, -67890, -12345], dtype=np.int64)
    first = batch._sb_codes(d)
    size = batch.sb_cache_size()
    second = batch._sb_codes(d)
    assert batch.sb_cache_size() == size  # no recomputation
    assert (first == second).all()


def test_sum_matches_scalar_fold():
    env = LNSEnv(8, 20)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    rng = np.random.default_rng(1)
    rows = [[int(c) for c in rng.integers(-(1 << 24), 1 << 24, size=6)]
            for _ in range(4)]
    rows[1][2] = None  # a zero in the middle of the fold
    arr = np.array([[ZERO_CODE if v is None else v for v in row]
                    for row in rows], dtype=np.int64)
    got = batch.sum(arr, axis=1)
    for i, row in enumerate(rows):
        want = scalar.sum(LNS_ZERO if v is None else v for v in row)
        assert batch.item(got, i) == want


def test_conversions_and_identities():
    env = LNSEnv(12, 50)
    scalar = LNSBackend(env)
    batch = BatchLNS(scalar=scalar)
    probs = [0.5, 1.0, 1e-300, 0.0, 3.25]
    arr = batch.from_floats(probs)
    for i, p in enumerate(probs):
        assert batch.item(arr, i) == scalar.from_float(p)
    bfs = [BigFloat.from_float(p) for p in probs]
    arr2 = batch.from_bigfloats(bfs)
    assert (arr == arr2).all()
    assert batch.is_zero(arr).tolist() == [False, False, False, True, False]
    assert (batch.ones(3) == 0).all()
    assert batch.is_zero(batch.zeros(3)).all()


def test_factory_and_guards():
    scalar = LNSBackend()
    bb = batch_backend_for(scalar)
    assert isinstance(bb, BatchLNS)
    assert bb.scalar is scalar and bb.env is scalar.env
    assert bb.name == scalar.name
    with pytest.raises(ValueError):
        BatchLNS(LNSEnv(12, 52))  # codes would overflow int64 sums
    with pytest.raises(ValueError):
        BatchLNS(LNSEnv(2, 2), scalar=LNSBackend(LNSEnv(3, 2)))


def test_forward_batch_routes_lns_through_engine():
    """apps.forward_batch now vectorizes LNS (it used to be a scalar
    fallback format) — and stays bit-for-bit with the scalar forward."""
    from repro.apps.hmm import forward, forward_batch
    from repro.data.dirichlet import sample_hcg_like_hmm
    hmm = sample_hcg_like_hmm(4, 10, seed=2, bits_per_step=120.0)
    obs = np.array([hmm.observations, hmm.observations[::-1]])
    backend = LNSBackend()
    got = forward_batch(hmm, backend, obs)
    want = [forward(hmm, backend, observations=tuple(int(o) for o in row))
            for row in obs]
    assert got == want
