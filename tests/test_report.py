"""Tests for the reporting utilities (tables and CDFs)."""

import pytest

from repro.report import (
    CDF,
    cdf_table,
    dominance,
    format_cell,
    orders_of_magnitude_gap,
    render_comparison,
    render_table,
)


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_nan(self):
        assert format_cell(float("nan")) == "-"

    def test_int(self):
        assert format_cell(42) == "42"

    def test_float_trimming(self):
        assert format_cell(0.25) == "0.25"
        assert format_cell(1.0) == "1"

    def test_large_and_tiny(self):
        assert format_cell(123456.0) == "1.23e+05"
        assert format_cell(0.0001) == "0.0001"

    def test_string(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_alignment_and_title(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 100, "b": "y"}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_missing_keys_render_dash(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_table(rows, columns=["a", "b"])
        assert "-" in text

    def test_comparison_deviation(self):
        rows = [{"name": "x", "model": 110.0, "paper": 100.0}]
        text = render_comparison(rows, "name", "model", "paper")
        assert "+10.0%" in text

    def test_comparison_missing_paper(self):
        rows = [{"name": "x", "model": 110.0, "paper": None}]
        text = render_comparison(rows, "name", "model", "paper")
        assert "-" in text


class TestCDF:
    def test_fraction_below(self):
        cdf = CDF.from_samples("x", [-10.0, -8.0, -6.0, -4.0])
        assert cdf.fraction_below(-9.0) == 0.25
        assert cdf.fraction_below(-3.0) == 1.0
        assert cdf.fraction_below(-11.0) == 0.0

    def test_fraction_below_empty(self):
        assert CDF.from_samples("x", []).fraction_below(0.0) == 0.0

    def test_median(self):
        cdf = CDF.from_samples("x", [-10.0, -8.0, -6.0])
        assert cdf.median == -8.0

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            CDF.from_samples("x", []).median

    def test_samples_sorted(self):
        cdf = CDF.from_samples("x", [-4.0, -10.0, -7.0])
        assert cdf.samples == (-10.0, -7.0, -4.0)

    def test_dominance(self):
        better = CDF.from_samples("b", [-12.0, -11.0, -10.0])
        worse = CDF.from_samples("w", [-8.0, -7.0, -6.0])
        assert dominance(better, worse)
        assert not dominance(worse, better)

    def test_orders_of_magnitude_gap(self):
        better = CDF.from_samples("b", [-12.0, -11.0, -10.0])
        worse = CDF.from_samples("w", [-9.0, -9.0, -9.0])
        assert orders_of_magnitude_gap(better, worse) == pytest.approx(2.0)

    def test_cdf_table_rows(self):
        cdfs = {"a": CDF.from_samples("a", [-9.0, -5.0])}
        rows = cdf_table(cdfs, thresholds=(-8.0,))
        assert rows[0]["<1e-8"] == 0.5
        assert rows[0]["n"] == 2
