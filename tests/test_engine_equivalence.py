"""Batched-vs-scalar equivalence across the Figure 3 formats.

One parameterized fixture supplies (scalar backend, batch backend)
pairs; every test asserts bit-for-bit (binary64, log) or element-exact
(posit) agreement, per the engine's contract.  Log-space pairs use the
``sequential`` accumulation mode on both sides — the mode the engine
guarantees bit-identical (NumPy's SIMD ``exp`` prevents a bit-exact
n-ary LSE; see repro.engine.batch).
"""

import numpy as np
import pytest

from repro.apps import forward_batch, pbd_pvalue_batch
from repro.apps.hmm import forward
from repro.apps.pbd import pbd_pvalue
from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.bigfloat import BigFloat
from repro.core.accuracy import measure_op, measure_ops_batch
from repro.core.sweep import FIG3_BINS, generate_add_pairs, generate_mul_pairs
from repro.engine import batch_backend_for
from repro.formats import PositEnv

FORMATS = ["binary64", "log", "posit(64,9)", "posit(64,12)", "posit(64,18)"]


def _scalar_backend(fmt):
    if fmt == "binary64":
        return Binary64Backend()
    if fmt == "log":
        return LogSpaceBackend(sum_mode="sequential")
    es = int(fmt.rstrip(")").split(",")[1])
    return PositBackend(PositEnv(64, es))


@pytest.fixture(params=FORMATS)
def backend_pair(request):
    """(scalar, batch) backends mirroring one another."""
    scalar = _scalar_backend(request.param)
    batch = batch_backend_for(scalar)
    assert batch is not None
    return scalar, batch


def _pairs_for_bin(op, bin_range, count, seed):
    gen = generate_add_pairs if op == "add" else generate_mul_pairs
    return list(gen(bin_range, count, seed=seed))


@pytest.mark.parametrize("op", ["add", "mul"])
def test_ops_bit_for_bit_across_fig3_bins(backend_pair, op):
    """The core acceptance property: one batched op call per bin must
    reproduce the scalar backend exactly, in every exponent bin."""
    scalar, batch = backend_pair
    for i, bin_range in enumerate(FIG3_BINS):
        pairs = _pairs_for_bin(op, bin_range, 6, seed=i)
        xs = batch.from_bigfloats([p.x.to_bigfloat() for p in pairs])
        ys = batch.from_bigfloats([p.y.to_bigfloat() for p in pairs])
        got = batch.add(xs, ys) if op == "add" else batch.mul(xs, ys)
        for j, pair in enumerate(pairs):
            a = scalar.from_bigfloat(pair.x.to_bigfloat())
            b = scalar.from_bigfloat(pair.y.to_bigfloat())
            want = scalar.add(a, b) if op == "add" else scalar.mul(a, b)
            assert batch.item(got, j) == want, (bin_range, pair)


@pytest.mark.parametrize("op", ["add", "mul"])
def test_measure_ops_batch_matches_measure_op(backend_pair, op):
    scalar, batch = backend_pair
    bin_range = (-2_000, -1_022)
    pairs = _pairs_for_bin(op, bin_range, 12, seed=5)
    got = measure_ops_batch(batch, op, pairs)
    want = [measure_op(scalar, op, p.x, p.y, exact=p.exact) for p in pairs]
    assert got == want


def test_forward_batch_equals_scalar(backend_pair):
    from repro.data.dirichlet import sample_hmm
    scalar, _batch = backend_pair
    hmm = sample_hmm(5, 6, 15, seed=11)
    rng = np.random.default_rng(12)
    obs = rng.integers(0, 6, size=(4, 15))
    got = forward_batch(hmm, scalar, obs)
    for i in range(obs.shape[0]):
        want = forward(hmm, scalar,
                       observations=tuple(int(o) for o in obs[i]))
        assert got[i] == want


def test_pbd_batch_equals_scalar(backend_pair):
    scalar, _batch = backend_pair
    rng = np.random.default_rng(13)
    sites = [[BigFloat.from_float(float(p))
              for p in rng.uniform(1e-6, 0.3, 30)] for _ in range(4)]
    got = pbd_pvalue_batch(sites, 3, scalar)
    want = [pbd_pvalue(row, 3, scalar) for row in sites]
    assert got == want


def test_forward_batch_deep_underflow_regime():
    """A compressed-magnitude HMM drives likelihoods far below
    binary64's range — the regimes where the formats diverge; batched
    results must still track the scalar backends exactly."""
    from repro.data.dirichlet import sample_hcg_like_hmm
    hmm = sample_hcg_like_hmm(4, 12, seed=21, bits_per_step=200.0)
    obs = np.array([hmm.observations, hmm.observations[::-1]])
    for fmt in ("binary64", "log", "posit(64,9)"):
        scalar = _scalar_backend(fmt)
        got = forward_batch(hmm, scalar, obs)
        for i in range(2):
            want = forward(hmm, scalar,
                           observations=tuple(int(o) for o in obs[i]))
            assert got[i] == want, fmt


def test_default_log_backend_close_not_required_bitwise():
    """With the default n-ary sum mode the batch forward stays within
    float tolerance of the scalar Equation-3 dataflow."""
    from repro.data.dirichlet import sample_hmm
    scalar = LogSpaceBackend()  # nary
    hmm = sample_hmm(4, 5, 20, seed=3)
    obs = np.array([hmm.observations])
    got = forward_batch(hmm, scalar, obs)[0]
    want = forward(hmm, scalar)
    assert got == pytest.approx(want, rel=1e-12)
