"""Tests for operand generation and the Figure 3 sweep driver, including
the paper's qualitative accuracy claims."""

import pytest

from repro.arith import standard_backends
from repro.core import (
    FIG3_BINS,
    accuracy_ordering,
    bin_label,
    generate_add_pairs,
    generate_mul_pairs,
    generate_sweep,
    run_op_sweep,
)
from repro.core.sweep import probability_pairs_from_trace
from repro.formats import Real


class TestGenerators:
    @pytest.mark.parametrize("bin_range", FIG3_BINS)
    def test_add_pairs_land_in_bin(self, bin_range):
        for pair in generate_add_pairs(bin_range, 25, seed=3):
            assert bin_range[0] <= pair.result_scale < bin_range[1]
            assert pair.op == "add"

    @pytest.mark.parametrize("bin_range", FIG3_BINS)
    def test_mul_pairs_land_in_bin(self, bin_range):
        for pair in generate_mul_pairs(bin_range, 25, seed=3):
            assert bin_range[0] <= pair.result_scale < bin_range[1]
            assert pair.op == "mul"

    def test_pairs_are_deterministic(self):
        a = list(generate_add_pairs(FIG3_BINS[0], 10, seed=5))
        b = list(generate_add_pairs(FIG3_BINS[0], 10, seed=5))
        assert all(x.x == y.x and x.y == y.y for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = list(generate_add_pairs(FIG3_BINS[0], 10, seed=1))
        b = list(generate_add_pairs(FIG3_BINS[0], 10, seed=2))
        assert any(x.x != y.x for x, y in zip(a, b))

    def test_exact_matches_operands(self):
        for pair in generate_mul_pairs((-100, -10), 10, seed=0):
            assert pair.exact == pair.x.mul(pair.y)

    def test_operands_positive(self):
        for pair in generate_add_pairs((-10, 1), 10, seed=0):
            assert pair.x.sign == 0 and pair.y.sign == 0

    def test_generate_sweep_counts(self):
        sweep = generate_sweep("add", per_bin=5, seed=0)
        assert set(sweep) == set(FIG3_BINS)
        assert all(len(v) == 5 for v in sweep.values())

    def test_bin_label(self):
        assert bin_label((-10, 1)) == "[-10, 0]"
        assert bin_label((-500, -100)) == "[-500, -100)"

    def test_trace_adapter(self):
        trace = [("mul", Real.from_float(0.5), Real.from_float(0.25)),
                 ("add", Real.from_float(0.5), Real.from_float(0.25))]
        muls = list(probability_pairs_from_trace(trace, "mul"))
        assert len(muls) == 1
        assert muls[0].exact == Real.from_float(0.125)


@pytest.fixture(scope="module")
def add_sweep():
    return run_op_sweep("add", standard_backends(), per_bin=30, seed=11)


@pytest.fixture(scope="module")
def mul_sweep():
    return run_op_sweep("mul", standard_backends(), per_bin=30, seed=11)


class TestFig3Claims:
    """The paper's three 'key takeaways' from Section IV.A, asserted on
    measured data."""

    def test_binary64_absent_outside_normal_range(self, add_sweep):
        for bin_range in FIG3_BINS:
            cell = add_sweep.boxes[bin_range]
            if bin_range[1] <= -1022:
                assert "binary64" not in cell
            else:
                assert "binary64" in cell

    def test_log_worse_than_binary64_in_normal_range(self, add_sweep):
        """Takeaway 1: inside binary64's normal range logarithms are the
        less accurate representation, and degrade as numbers shrink."""
        for bin_range in ((-1022, -500), (-500, -100), (-100, -10)):
            cell = add_sweep.boxes[bin_range]
            assert cell["log"].median > cell["binary64"].median

    def test_log_degrades_with_magnitude(self, add_sweep):
        medians = [add_sweep.boxes[b]["log"].median for b in FIG3_BINS]
        # Smaller results (earlier bins) must have larger error.
        assert medians[0] > medians[-1]

    def test_posit12_beats_log_outside_range(self, add_sweep, mul_sweep):
        """Takeaway 2: posits beat logarithms outside binary64's range
        (except posit(64,9) in the deepest bins, checked separately)."""
        for sweep in (add_sweep, mul_sweep):
            for bin_range in FIG3_BINS[:5]:
                cell = sweep.boxes[bin_range]
                assert cell["posit(64,12)"].median < cell["log"].median
                assert cell["posit(64,18)"].median < cell["log"].median

    def test_posit9_worst_in_deepest_bin(self, add_sweep):
        """The paper's noted exception: posit(64,9) in [-10000, -6000)
        drowns in regime bits and loses to log."""
        cell = add_sweep.boxes[(-10_000, -8_000)]
        assert cell["posit(64,9)"].median > cell["log"].median

    def test_posit9_matches_binary64_near_one(self, add_sweep):
        """posit(64,9) offers binary64's 52 fraction bits near 1.0, so
        their medians must be close (within half a decade)."""
        cell = add_sweep.boxes[(-10, 1)]
        assert abs(cell["posit(64,9)"].median - cell["binary64"].median) < 0.5

    def test_posit18_steadier_than_log(self, add_sweep):
        """Takeaway 3 ('changes more steadily'): posit(64,18)'s median
        spread across bins is smaller than log's."""
        p18 = [add_sweep.boxes[b]["posit(64,18)"].median for b in FIG3_BINS]
        logm = [add_sweep.boxes[b]["log"].median for b in FIG3_BINS]
        assert max(p18) - min(p18) < max(logm) - min(logm)

    def test_box_percentiles_ordered(self, add_sweep):
        for bin_range in FIG3_BINS:
            for stats in add_sweep.boxes[bin_range].values():
                if stats.median is None:
                    continue
                assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95

    def test_accuracy_ordering_helper(self, add_sweep):
        order = accuracy_ordering(add_sweep, (-10, 1))
        assert order[0] in ("binary64", "posit(64,9)")
        assert order[-1] in ("log", "posit(64,18)")

    def test_rows_roundtrip(self, add_sweep):
        rows = add_sweep.rows()
        assert len(rows) == sum(len(c) for c in add_sweep.boxes.values())
        assert {"format", "bin", "median"} <= set(rows[0])

    def test_mul_claims_hold_too(self, mul_sweep):
        cell = mul_sweep.boxes[(-100, -10)]
        assert cell["log"].median > cell["binary64"].median
