"""The benchmark-regression gate script, and the standing guarantee
that the *committed* BENCH_*.json artifacts (recorded on dedicated
hardware) meet the full >=10x / >=5x floors."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks"))
import check_bench_regression as gate  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _payload(bench, key, speedup):
    return {"benchmark": bench, "results": {key: {"speedup": speedup}}}


def _overhead_payload(bench, key, frac):
    return {"benchmark": bench, "results": {key: {"overhead_frac": frac}}}


class TestCheckPayload:
    FLOORS = gate.gate_floors({})
    CEILINGS = gate.gate_ceilings({})

    def test_passing_payload(self):
        ok = _payload("batch_throughput", "forward_log_batch64", 17.9)
        assert gate.check_payload(ok, self.FLOORS) == []

    def test_below_gate_fails(self):
        bad = _payload("batch_throughput", "forward_log_batch64", 9.4)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1

    def test_prefix_match_covers_parameterized_keys(self):
        bad = _payload("apps_throughput", "vicar_forward_multi48_h13", 4.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1

    def test_ungated_results_ignored(self):
        other = _payload("apps_throughput", "lns_mul", 1.1)
        assert gate.check_payload(other, self.FLOORS) == []

    def test_missing_speedup_is_a_violation(self):
        broken = {"benchmark": "batch_throughput",
                  "results": {"forward_log_batch64": {}}}
        assert len(gate.check_payload(broken, self.FLOORS)) == 1

    def test_env_lowers_floor(self):
        floors = gate.gate_floors({"REPRO_FORWARD_SPEEDUP_FLOOR": "2.0"})
        marginal = _payload("batch_throughput", "forward_log_batch64", 3.0)
        assert gate.check_payload(marginal, floors) == []

    def test_posit_gap_floors(self):
        """The PR 5 posit-gap gates: add/mul >= 15x, fused forward
        >= 7x, quire accumulation >= 10x."""
        ok = _payload("batch_throughput", "posit64_12_add", 16.0)
        assert gate.check_payload(ok, self.FLOORS) == []
        bad = _payload("batch_throughput", "posit64_12_mul", 14.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        bad = _payload("batch_throughput", "forward_posit64_12_batch64", 6.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        bad = _payload("apps_throughput", "quire_accumulate_posit16_1", 9.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1

    def test_fused_forward_floor(self):
        """The PR 8 compiled-tier gate: the fused resident-plane
        forward must stay >= 2x the PR 5 batch path."""
        ok = _payload("batch_throughput", "posit_forward_fused", 2.3)
        assert gate.check_payload(ok, self.FLOORS) == []
        bad = _payload("batch_throughput", "posit_forward_fused", 1.8)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        relaxed = gate.gate_floors(
            {"REPRO_POSIT_FUSED_SPEEDUP_FLOOR": "1.2"})
        assert gate.check_payload(bad, relaxed) == []

    def test_fused_forward_required_entry(self):
        partial = _payload("batch_throughput", "forward_log_batch64", 20.0)
        assert "posit_forward_fused" in gate.missing_required(partial)

    def test_sub_div_entries_gated(self):
        for key in ("binary64_sub", "logspace_div", "posit64_12_div",
                    "lns6_8_sub", "lns12_50_div"):
            bad = _payload("batch_throughput", key, 2.0)
            assert len(gate.check_payload(bad, self.FLOORS)) == 1, key
            ok = _payload("batch_throughput", key, 8.0)
            assert gate.check_payload(ok, self.FLOORS) == [], key

    def test_overhead_ceiling(self):
        """The telemetry disabled-overhead gate bounds a cost fraction
        from above (a ceiling, not a speedup floor)."""
        ok = _overhead_payload("telemetry_overhead",
                               "forward_disabled_overhead", 0.001)
        assert gate.check_payload(ok, self.FLOORS, self.CEILINGS) == []
        bad = _overhead_payload("telemetry_overhead",
                                "forward_disabled_overhead", 0.05)
        assert len(gate.check_payload(bad, self.FLOORS,
                                      self.CEILINGS)) == 1

    def test_overhead_missing_frac_is_a_violation(self):
        broken = {"benchmark": "telemetry_overhead",
                  "results": {"forward_disabled_overhead": {}}}
        assert len(gate.check_payload(broken, self.FLOORS,
                                      self.CEILINGS)) == 1

    def test_ceilings_optional_and_env_raises_ceiling(self):
        bad = _overhead_payload("telemetry_overhead",
                                "forward_disabled_overhead", 0.05)
        # Omitting the ceilings dict keeps the old call signature valid.
        assert gate.check_payload(bad, self.FLOORS) == []
        relaxed = gate.gate_ceilings(
            {"REPRO_TELEMETRY_OVERHEAD_CEILING": "0.10"})
        assert gate.check_payload(bad, self.FLOORS, relaxed) == []

    def test_service_coalescing_floor(self):
        """The serving-tier gate: the coalescing server must beat the
        no-coalescing configuration >= 3x on same-shape forward
        traffic."""
        ok = _payload("service_load", "forward_coalescing", 4.1)
        assert gate.check_payload(ok, self.FLOORS) == []
        bad = _payload("service_load", "forward_coalescing", 2.4)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        relaxed = gate.gate_floors({"REPRO_SERVICE_SPEEDUP_FLOOR": "1.5"})
        assert gate.check_payload(bad, relaxed) == []

    def test_service_required_entry(self):
        empty = {"benchmark": "service_load", "results": {}}
        assert gate.missing_required(empty) == ["forward_coalescing"]

    def test_workloads_floors(self):
        """The PR 9 workload gates: batched Viterbi and pair-HMM must
        stay >= 5x their serial plans; Kalman is recorded but
        ungated."""
        ok = _payload("workloads_throughput", "viterbi_log_batch128", 9.0)
        assert gate.check_payload(ok, self.FLOORS) == []
        bad = _payload("workloads_throughput", "viterbi_log_batch128", 4.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        bad = _payload("workloads_throughput",
                       "pairhmm_binary64_batch256", 3.0)
        assert len(gate.check_payload(bad, self.FLOORS)) == 1
        ungated = _payload("workloads_throughput",
                           "kalman_binary64_batch64", 1.2)
        assert gate.check_payload(ungated, self.FLOORS) == []
        relaxed = gate.gate_floors(
            {"REPRO_WORKLOADS_SPEEDUP_FLOOR": "2.0"})
        assert gate.check_payload(
            _payload("workloads_throughput",
                     "pairhmm_binary64_batch256", 3.0), relaxed) == []

    def test_workloads_required_entries(self):
        empty = {"benchmark": "workloads_throughput", "results": {}}
        assert gate.missing_required(empty) == \
            ["viterbi", "pairhmm", "kalman"]

    def test_missing_required_detects_absent_entries(self):
        partial = _payload("batch_throughput", "forward_log_batch64", 20.0)
        missing = gate.missing_required(partial)
        assert "posit64_12_sub" in missing and "lns6_8_sub" in missing
        assert gate.missing_required(
            _payload("other_bench", "x", 1.0)) == []


class TestMain:
    def test_missing_path_is_skipped(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "nope")]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_directory_scan_and_failure_exit(self, tmp_path, capsys):
        good = tmp_path / "BENCH_batch.json"
        good.write_text(json.dumps(
            _payload("batch_throughput", "forward_log_batch64", 15.0)))
        assert gate.main([str(tmp_path)]) == 0
        bad = tmp_path / "BENCH_apps.json"
        bad.write_text(json.dumps(
            _payload("apps_throughput", "vicar_forward_multi48_h13", 2.0)))
        assert gate.main([str(tmp_path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unreadable_file_fails(self, tmp_path):
        broken = tmp_path / "BENCH_x.json"
        broken.write_text("{not json")
        assert gate.main([str(broken)]) == 1


class TestCommittedArtifacts:
    """The repo-root BENCH files are the recorded dedicated-hardware
    results; they must meet the full gates at all times (the
    acceptance criterion that the inversion did not cost the recorded
    speedups)."""

    ARTIFACTS = ("BENCH_batch.json", "BENCH_apps.json",
                 "BENCH_telemetry.json", "BENCH_service.json",
                 "BENCH_workloads.json")

    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_artifact_exists(self, name):
        assert os.path.exists(os.path.join(REPO_ROOT, name))

    def test_committed_artifacts_meet_full_gates(self):
        floors = gate.gate_floors({})  # full gates, no env relaxing
        ceilings = gate.gate_ceilings({})
        for name in self.ARTIFACTS:
            with open(os.path.join(REPO_ROOT, name)) as f:
                payload = json.load(f)
            assert gate.check_payload(payload, floors, ceilings) == [], name

    def test_committed_artifacts_contain_required_entries(self):
        """The recorded artifacts must carry every gated entry —
        including the PR 5 sub/div coverage for all batched formats
        and the telemetry disabled-overhead measurement (absence would
        silently skip the gate)."""
        for name in self.ARTIFACTS:
            with open(os.path.join(REPO_ROOT, name)) as f:
                payload = json.load(f)
            assert gate.missing_required(payload) == [], name
