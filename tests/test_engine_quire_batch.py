"""BatchQuire vs the scalar Quire: element-exact accumulate-and-round.

Exhaustive pairwise coverage at small widths (like the BatchPosit
tests), randomized chain/dot-product coverage at 8 and 16 bits, plus
special-value and sizing behaviour.
"""

import itertools

import numpy as np
import pytest

from repro.engine import BatchQuire, fused_dot_product_batch
from repro.engine.quire_batch import fused_sum_batch, quire_limbs
from repro.formats.posit import PositEnv
from repro.formats.quire import Quire, fused_dot_product


def _scalar_fdp(env, xs, ys):
    return fused_dot_product(env, [int(v) for v in xs],
                             [int(v) for v in ys])


@pytest.mark.parametrize("nbits,es", [(4, 0), (5, 1), (6, 1)])
def test_exhaustive_pairwise_products(nbits, es):
    """Every (a, b): quire(a*b) rounds exactly like the scalar quire."""
    env = PositEnv(nbits, es)
    pairs = list(itertools.product(range(1 << nbits), repeat=2))
    a = np.array([x for x, _ in pairs], dtype=np.uint64)
    b = np.array([y for _, y in pairs], dtype=np.uint64)
    q = BatchQuire(env, a.shape)
    q.add_product(a, b)
    got = q.to_posit()
    for i, (x, y) in enumerate(pairs):
        want = Quire(env).add_product(x, y).to_posit()
        assert int(got[i]) == want, (x, y)


@pytest.mark.parametrize("nbits,es", [(5, 0), (6, 1)])
def test_exhaustive_pairwise_sums(nbits, es):
    """Every (a, b): quire(a + b) rounds exactly like the scalar quire
    (covers cancellation down to exact zero and NaR absorption)."""
    env = PositEnv(nbits, es)
    pairs = list(itertools.product(range(1 << nbits), repeat=2))
    a = np.array([x for x, _ in pairs], dtype=np.uint64)
    b = np.array([y for _, y in pairs], dtype=np.uint64)
    q = BatchQuire(env, a.shape)
    q.add_posit(a).add_posit(b)
    got = q.to_posit()
    for i, (x, y) in enumerate(pairs):
        want = Quire(env).add_posit(x).add_posit(y).to_posit()
        assert int(got[i]) == want, (x, y)


@pytest.mark.parametrize("nbits,es", [(8, 0), (8, 1), (16, 1)])
def test_random_mixed_chains(nbits, es):
    """Randomized add/sub/product chains, including sign cancellation."""
    env = PositEnv(nbits, es)
    rng = np.random.default_rng(nbits * 31 + es)
    n_chains, length = 120, 8
    xs = rng.integers(0, 1 << nbits, size=(n_chains, length)).astype(np.uint64)
    ys = rng.integers(0, 1 << nbits, size=(n_chains, length)).astype(np.uint64)
    q = BatchQuire(env, (n_chains,))
    for k in range(length):
        if k % 3 == 0:
            q.add_product(xs[:, k], ys[:, k])
        elif k % 3 == 1:
            q.add_posit(xs[:, k])
        else:
            q.sub_posit(ys[:, k])
    got = q.to_posit()
    for i in range(n_chains):
        sq = Quire(env)
        for k in range(length):
            if k % 3 == 0:
                sq.add_product(int(xs[i, k]), int(ys[i, k]))
            elif k % 3 == 1:
                sq.add_posit(int(xs[i, k]))
            else:
                sq.sub_posit(int(ys[i, k]))
        assert int(got[i]) == sq.to_posit(), i


def test_fused_dot_product_batch_matches_scalar():
    env = PositEnv(8, 1)
    rng = np.random.default_rng(7)
    xs = rng.integers(0, 256, size=(40, 12)).astype(np.uint64)
    ys = rng.integers(0, 256, size=(40, 12)).astype(np.uint64)
    got = fused_dot_product_batch(env, xs, ys)
    for i in range(xs.shape[0]):
        assert int(got[i]) == _scalar_fdp(env, xs[i], ys[i]), i


def test_fused_sum_batch_matches_env():
    env = PositEnv(8, 1)
    rng = np.random.default_rng(8)
    arr = rng.integers(0, 256, size=(30, 10)).astype(np.uint64)
    got = fused_sum_batch(env, arr, axis=1)
    for i in range(arr.shape[0]):
        assert int(got[i]) == env.fused_sum(int(v) for v in arr[i]), i


def test_specials_and_clear():
    env = PositEnv(8, 1)
    q = BatchQuire(env, (4,))
    one = env.from_float(1.0)
    bits = np.array([0, env.nar, one, one], dtype=np.uint64)
    q.add_posit(bits)
    q.sub_posit(np.array([0, 0, 0, one], dtype=np.uint64))
    out = q.to_posit()
    assert int(out[0]) == 0          # only zeros accumulated
    assert int(out[1]) == env.nar    # NaR is sticky
    assert int(out[2]) == one
    assert int(out[3]) == 0          # exact cancellation
    assert q.is_nar.tolist() == [False, True, False, False]
    q.clear()
    assert (q.to_posit() == 0).all()
    assert not q.is_nar.any()


def test_accumulation_beats_per_op_rounding():
    """The quire's reason to exist: summing many sub-ulp terms must not
    lose them to per-add rounding (the repo's ablation argument)."""
    env = PositEnv(16, 1)
    tiny = env.minpos
    n_terms = 1 << 12
    q = BatchQuire(env, ())
    for _ in range(n_terms):
        q.add_posit(np.uint64(tiny))
    exact = Quire(env)
    for _ in range(n_terms):
        exact.add_posit(tiny)
    assert int(q.to_posit()) == exact.to_posit()
    # Per-op rounding of the same stream collapses to a different sum.
    acc = 0
    for _ in range(n_terms):
        acc = env.add(acc, tiny)
    assert acc != exact.to_posit()


def test_wide_configurations_are_refused():
    """posit(64, >=9) quires span thousands of limbs; the constructor
    refuses them unless the caller raises the cap explicitly."""
    env = PositEnv(64, 18)
    assert quire_limbs(env) > 100_000
    with pytest.raises(ValueError, match="impractical"):
        BatchQuire(env, (2,))


def test_practical_64bit_configuration():
    """Small-ES 64-bit posits have practical quires; spot-check one."""
    env = PositEnv(64, 2)
    assert quire_limbs(env) <= 32
    rng = np.random.default_rng(9)
    floats = 2.0 ** rng.uniform(-40, 40, size=16)
    from repro.engine import BatchPosit
    bp = BatchPosit(env)
    bits = bp.from_floats(floats)
    got = fused_sum_batch(env, bits.reshape(4, 4), axis=1)
    for i in range(4):
        assert int(got[i]) == env.fused_sum(
            int(v) for v in bits.reshape(4, 4)[i]), i
