"""Tests for the HMM extensions: backward, Viterbi, posterior decoding.

These provide strong cross-validation of the forward algorithm through
independent dataflows and exact invariants.
"""

import itertools
import math

import pytest

from repro.arith import BigFloatBackend, Binary64Backend, LogSpaceBackend, PositBackend
from repro.apps import (
    backward,
    backward_matrix,
    forward,
    forward_matrix,
    path_probability,
    posterior_decode,
    posterior_distributions,
    viterbi,
)
from repro.bigfloat import BigFloat, relative_error
from repro.data import sample_hcg_like_hmm, sample_hmm
from repro.formats import PositEnv


@pytest.fixture(scope="module")
def hmm():
    return sample_hmm(4, 5, 12, seed=21)


class TestBackward:
    def test_forward_backward_likelihood_equal_oracle(self, hmm):
        """The fundamental identity: forward and backward compute the
        same likelihood (exactly, in exact-enough arithmetic)."""
        backend = BigFloatBackend(256)
        f = forward(hmm, backend)
        b = backward(hmm, backend)
        assert relative_error(f, b).to_float() < 2 ** -200

    def test_forward_backward_close_in_every_format(self, hmm):
        for backend in (Binary64Backend(), LogSpaceBackend(),
                        PositBackend(PositEnv(64, 12))):
            f = backend.to_bigfloat(forward(hmm, backend))
            b = backend.to_bigfloat(backward(hmm, backend))
            assert relative_error(f, b).to_float() < 1e-12

    def test_alpha_beta_product_invariant(self, hmm):
        """sum_q alpha_t[q] * beta_t[q] equals the likelihood at EVERY t
        (the textbook forward-backward invariant)."""
        backend = BigFloatBackend(256)
        alphas = forward_matrix(hmm, backend)
        betas = backward_matrix(hmm, backend)
        like = forward(hmm, backend)
        for alpha_t, beta_t in zip(alphas, betas):
            total = BigFloat.zero()
            for a, b in zip(alpha_t, beta_t):
                total = total.add(a.mul(b, 256), 256)
            assert relative_error(like, total).to_float() < 2 ** -200

    def test_matrices_shapes(self, hmm):
        backend = Binary64Backend()
        alphas = forward_matrix(hmm, backend)
        betas = backward_matrix(hmm, backend)
        assert len(alphas) == len(betas) == hmm.length
        assert all(len(row) == hmm.n_states for row in alphas)

    def test_backward_deep_magnitudes(self):
        """Backward in posit(64,18) survives the same deep regime as
        forward."""
        deep = sample_hcg_like_hmm(3, 25, seed=3, bits_per_step=500.0)
        backend = PositBackend(PositEnv(64, 18))
        oracle = BigFloatBackend()
        got = backend.to_bigfloat(backward(deep, backend))
        ref = backward(deep, oracle)
        assert relative_error(ref, got).to_float() < 1e-9
        assert ref.scale < -10_000


class TestViterbi:
    def test_path_is_optimal_brute_force(self):
        """Viterbi must find the max-probability path (checked by
        enumerating all H^T paths on a tiny instance)."""
        small = sample_hmm(3, 4, 5, seed=8)
        backend = BigFloatBackend()
        path, prob = viterbi(small, backend)
        best = None
        for cand in itertools.product(range(3), repeat=5):
            p = path_probability(small, list(cand), backend)
            if best is None or p > best:
                best = p
        assert relative_error(best, prob).to_float() < 2 ** -200

    def test_path_probability_below_likelihood(self, hmm):
        backend = BigFloatBackend()
        _, prob = viterbi(hmm, backend)
        like = forward(hmm, backend)
        assert prob < like  # one path vs the sum over all paths

    def test_path_length_and_range(self, hmm):
        path, _ = viterbi(hmm, Binary64Backend())
        assert len(path) == hmm.length
        assert all(0 <= q < hmm.n_states for q in path)

    def test_formats_agree_on_path(self, hmm):
        """All reasonable formats find the same optimal path on a
        well-separated instance."""
        ref_path, _ = viterbi(hmm, BigFloatBackend())
        for backend in (Binary64Backend(), LogSpaceBackend(),
                        PositBackend(PositEnv(64, 12))):
            path, _ = viterbi(hmm, backend)
            assert path == ref_path, backend.name

    def test_viterbi_log_space_needs_no_lse(self, hmm):
        """Viterbi in log-space only multiplies (adds) and compares —
        it must work even where LSE would dominate cost."""
        path, prob = viterbi(hmm, LogSpaceBackend())
        assert math.isfinite(prob)
        assert len(path) == hmm.length

    def test_viterbi_deep_magnitude_binary64_fails(self):
        deep = sample_hcg_like_hmm(3, 30, seed=5, bits_per_step=400.0)
        b64 = Binary64Backend()
        _, prob = viterbi(deep, b64)
        assert prob == 0.0  # all path probabilities underflow
        _, posit_prob = viterbi(deep, PositBackend(PositEnv(64, 18)))
        assert posit_prob != 0


class TestPosterior:
    def test_posterior_path_matches_oracle(self, hmm):
        ref = posterior_decode(hmm, BigFloatBackend())
        got = posterior_decode(hmm, Binary64Backend())
        assert ref == got

    def test_posterior_length(self, hmm):
        assert len(posterior_decode(hmm, Binary64Backend())) == hmm.length

    def test_posterior_distribution_normalizes(self, hmm):
        """sum_q gamma_t(q) = likelihood for every t."""
        backend = BigFloatBackend()
        gammas = posterior_distributions(hmm, backend)
        like = forward(hmm, backend)
        for gamma_t in gammas:
            total = BigFloat.zero()
            for g in gamma_t:
                total = total.add(g, 256)
            assert relative_error(like, total).to_float() < 2 ** -200

    def test_posterior_differs_from_viterbi_sometimes(self):
        """Posterior decoding and Viterbi are different criteria; on at
        least one seed they disagree (sanity that we implemented two
        algorithms, not one)."""
        backend = BigFloatBackend()
        disagreements = 0
        for seed in range(6):
            h = sample_hmm(3, 3, 10, seed=seed)
            v, _ = viterbi(h, backend)
            p = posterior_decode(h, backend)
            if v != p:
                disagreements += 1
        assert disagreements >= 1
