"""The typed service contract: round-trips, strict versioned rejection,
plans travelling inside requests, and the exact value codec."""

import json

import pytest

from repro.bigfloat import BigFloat
from repro.engine.plan import PLAN_SCHEMA_VERSION, ExecPlan
from repro.service.api import (
    API_VERSION,
    ErrorInfo,
    InvalidRequest,
    Overloaded,
    ProtocolError,
    ServiceError,
    UnknownKind,
    WorkloadFailed,
    WorkloadRequest,
    WorkloadResult,
    decode_bigfloat,
    encode_bigfloat,
    encode_value,
    error_from_info,
)


class TestRequestRoundTrip:
    def test_round_trip_preserves_everything(self):
        request = WorkloadRequest(
            kind="forward", payload={"models": [{"x": 1}]},
            format="posit(64,12)", plan=ExecPlan(batch_size=8),
            priority=3, request_id="r-17")
        wire = json.loads(json.dumps(request.to_json()))
        back = WorkloadRequest.from_json(wire)
        assert back == request
        assert back.plan == ExecPlan(batch_size=8)

    def test_defaults_round_trip(self):
        request = WorkloadRequest(kind="pbd")
        back = WorkloadRequest.from_json(request.to_json())
        assert back == request
        assert back.api_version == API_VERSION
        assert back.plan is None and back.priority == 0

    def test_unknown_field_rejected_with_versions(self):
        with pytest.raises(ProtocolError, match=f"api v{API_VERSION}"):
            WorkloadRequest.from_json({"kind": "forward",
                                       "coalesce_hint": True})
        with pytest.raises(ProtocolError, match="coalesce_hint"):
            WorkloadRequest.from_json({"kind": "forward",
                                       "coalesce_hint": True})

    def test_newer_api_version_rejected(self):
        with pytest.raises(ProtocolError,
                           match=f"newer than this build's v{API_VERSION}"):
            WorkloadRequest.from_json({"kind": "forward",
                                       "api_version": API_VERSION + 1})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            WorkloadRequest.from_json(["forward"])

    def test_missing_kind_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            WorkloadRequest.from_json({"payload": {}})

    def test_invalid_priority_rejected(self):
        with pytest.raises(InvalidRequest):
            WorkloadRequest(kind="op", priority="high")

    def test_invalid_plan_type_rejected(self):
        with pytest.raises(InvalidRequest):
            WorkloadRequest(kind="op", plan={"batch": True})


class TestPlanTravel:
    """Satellite: ExecPlan JSON rides inside requests."""

    def test_plan_json_embedded(self):
        plan = ExecPlan(batch=False, chunk_size=7, cache="refresh")
        wire = WorkloadRequest(kind="op", plan=plan).to_json()
        assert wire["plan"]["plan_version"] == PLAN_SCHEMA_VERSION
        assert WorkloadRequest.from_json(wire).plan == plan

    def test_bad_plan_is_a_protocol_error(self):
        wire = WorkloadRequest(kind="op").to_json()
        wire["plan"] = {"warp_speed": 9}
        with pytest.raises(ProtocolError, match="warp_speed"):
            WorkloadRequest.from_json(wire)

    def test_newer_plan_schema_names_both_versions(self):
        wire = WorkloadRequest(kind="op").to_json()
        wire["plan"] = {"plan_version": PLAN_SCHEMA_VERSION + 1}
        with pytest.raises(ProtocolError,
                           match=f"v{PLAN_SCHEMA_VERSION + 1}"):
            WorkloadRequest.from_json(wire)


class TestResultRoundTrip:
    def test_round_trip(self):
        result = WorkloadResult(kind="forward", values=[[0, "a", -3]],
                                request_id="r", stats={"batch_size": 4},
                                telemetry={"counters": {}})
        back = WorkloadResult.from_json(
            json.loads(json.dumps(result.to_json())))
        assert back == result

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="vibes"):
            WorkloadResult.from_json({"kind": "forward", "vibes": 1})

    def test_bigfloats_decodes_values(self):
        bf = BigFloat.from_float(0.8125)
        result = WorkloadResult(kind="op", values=[encode_bigfloat(bf)])
        assert result.bigfloats() == [bf]


class TestErrorInfo:
    def test_round_trip_and_mapping(self):
        for cls in (ProtocolError, UnknownKind, InvalidRequest,
                    Overloaded, WorkloadFailed, ServiceError):
            info = cls("boom", details={"hint": "x"}).to_error_info()
            back = ErrorInfo.from_json(info.to_json())
            rebuilt = error_from_info(back)
            assert type(rebuilt) is cls
            assert str(rebuilt) == "boom"
            assert rebuilt.details == {"hint": "x"}

    def test_unknown_code_degrades_to_base(self):
        info = ErrorInfo(code="not-a-real-code", message="m")
        assert type(error_from_info(info)) is ServiceError

    def test_http_statuses(self):
        assert ProtocolError("x").http_status == 400
        assert Overloaded("x").http_status == 429
        assert WorkloadFailed("x").http_status == 500

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="severity"):
            ErrorInfo.from_json({"code": "c", "message": "m",
                                 "severity": 11})


class TestValueCodec:
    """The wire form is the exact BigFloat triple — no float rounding."""

    def test_round_trip_exact(self):
        for v in (0.0, 1.0, 0.3, 2.0 ** -1074, -1.5e300):
            bf = BigFloat.from_float(v)
            assert decode_bigfloat(encode_bigfloat(bf)) == bf

    def test_huge_exponent_survives(self):
        tiny = BigFloat.from_float(0.75).mul_pow2(-3_000_000)
        wire = json.loads(json.dumps(encode_bigfloat(tiny)))
        assert decode_bigfloat(wire) == tiny

    def test_encode_value_goes_through_backend(self):
        from repro.arith.backends import Binary64Backend
        backend = Binary64Backend()
        wire = encode_value(backend, backend.from_bigfloat(
            BigFloat.from_float(0.5)))
        assert decode_bigfloat(wire) == BigFloat.from_float(0.5)

    def test_malformed_triples_rejected(self):
        for bad in ([], [0, "a"], [0, 10, -3], "0xa", None):
            with pytest.raises(ProtocolError):
                decode_bigfloat(bad)


class TestCacheIdentity:
    def test_scheduling_fields_excluded(self):
        base = dict(kind="op", payload={"op": "add", "a": [1], "b": [2]},
                    format="binary64")
        a = WorkloadRequest(priority=5, request_id="x",
                            plan=ExecPlan(batch_size=2), **base)
        b = WorkloadRequest(**base)
        assert a.cache_identity() == b.cache_identity()

    def test_payload_included(self):
        a = WorkloadRequest(kind="op", payload={"op": "add"},
                            format="binary64")
        b = WorkloadRequest(kind="op", payload={"op": "mul"},
                            format="binary64")
        assert a.cache_identity() != b.cache_identity()

    def test_compiled_included(self):
        """``plan.compiled`` keys the cache (PR 8): compiled and
        uncompiled results never share an entry, while the plan's
        scheduling knobs stay excluded."""
        base = dict(kind="op", payload={"op": "add", "a": [1], "b": [2]},
                    format="posit64_12")
        plain = WorkloadRequest(**base)
        compiled = WorkloadRequest(plan=ExecPlan(compiled=True), **base)
        uncompiled = WorkloadRequest(plan=ExecPlan(batch_size=4), **base)
        assert compiled.cache_identity() != plain.cache_identity()
        assert uncompiled.cache_identity() == plain.cache_identity()
        assert plain.cache_identity()["compiled"] is False
