"""The on-disk result cache: keying, hit/miss behaviour, and the
acceptance property that a second run with unchanged params performs no
recomputation.
"""

import json
import os

import pytest

from repro import faults, telemetry
from repro.experiments import cache
from repro.experiments.runner import REGISTRY, Experiment, main, run_experiment


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield


class TestKeying:
    def test_params_change_key(self):
        a = cache.params_key("fig3", {"scale": "test"})
        b = cache.params_key("fig3", {"scale": "bench"})
        c = cache.params_key("fig9", {"scale": "test"})
        assert len({a, b, c}) == 3

    def test_key_is_stable(self):
        assert cache.params_key("fig3", {"scale": "test", "batch": True}) \
            == cache.params_key("fig3", {"batch": True, "scale": "test"})

    def test_code_digest_covers_the_package(self, monkeypatch):
        digest = cache.code_digest()
        assert len(digest) == 32
        # The digest is memoized per process and deterministic.
        assert cache.code_digest() == digest


class TestStoreLoad:
    def test_roundtrip(self):
        params = {"scale": "test"}
        assert cache.load("figX", params) is None
        path = cache.store("figX", params, "rendered report",
                           elapsed_seconds=1.5)
        assert os.path.exists(path)
        entry = cache.load("figX", params)
        assert entry["text"] == "rendered report"
        assert entry["experiment"] == "figX"
        assert entry["code_digest"] == cache.code_digest()

    def test_corrupt_entry_is_a_miss(self):
        params = {"scale": "test"}
        path = cache.store("figX", params, "ok")
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.load("figX", params) is None

    def test_clear(self):
        cache.store("figX", {}, "a")
        cache.store("figY", {}, "b")
        assert cache.clear() == 2
        assert cache.load("figX", {}) is None


class TestChecksum:
    """PR 10: every entry carries a content checksum; a bit-flipped or
    truncated entry is detected, counted, deleted, and treated as a
    miss — then healed by the next store."""

    PARAMS = {"scale": "test"}

    def test_bitflip_in_text_is_detected_and_healed(self):
        path = cache.store("figX", self.PARAMS, "rendered report")
        with open(path) as f:
            entry = json.load(f)
        entry["text"] = "rendered rep0rt"        # silent on-disk damage
        with open(path, "w") as f:
            json.dump(entry, f)
        with telemetry.collect() as col:
            assert cache.load("figX", self.PARAMS) is None
        assert col.events["cache.corrupt"] == 1
        assert not os.path.exists(path)          # deleted, not poisoned
        # The next store rewrites the same key and hits again.
        cache.store("figX", self.PARAMS, "rendered report")
        assert cache.load("figX", self.PARAMS)["text"] == "rendered report"

    def test_legacy_entry_without_checksum_is_invalidated(self):
        path = cache.store("figX", self.PARAMS, "ok")
        with open(path) as f:
            entry = json.load(f)
        del entry["checksum"]                    # pre-PR-10 entry shape
        with open(path, "w") as f:
            json.dump(entry, f)
        with telemetry.collect() as col:
            assert cache.load("figX", self.PARAMS) is None
        assert col.events["cache.corrupt"] == 1

    def test_truncated_raw_bytes_are_corruption(self):
        path = cache.store("figX", self.PARAMS, "ok")
        with open(path, "rb") as f:
            raw = f.read()
        with open(path, "wb") as f:
            f.write(raw[:len(raw) // 2])         # torn write
        with telemetry.collect() as col:
            assert cache.load("figX", self.PARAMS) is None
        assert col.events["cache.corrupt"] == 1
        assert not os.path.exists(path)

    def test_fault_site_corrupt_mode_truncates_the_read(self):
        """``cache.read`` in ``corrupt`` mode injects the torn-read
        without touching the disk bytes."""
        path = cache.store("figX", self.PARAMS, "ok")
        plan = faults.FaultPlan([faults.FaultRule("cache.read",
                                                  mode="corrupt")])
        with faults.inject(plan), telemetry.collect() as col:
            assert cache.load("figX", self.PARAMS) is None
        assert plan.fired == [("cache.read", os.path.basename(path),
                               "corrupt")]
        assert col.events["cache.corrupt"] == 1
        # The injected corruption deleted the (healthy) entry; a fresh
        # store makes it hit again once the plan is gone.
        cache.store("figX", self.PARAMS, "ok")
        assert cache.load("figX", self.PARAMS)["text"] == "ok"

    def test_fault_site_error_mode_is_a_corrupt_miss(self):
        cache.store("figX", self.PARAMS, "ok")
        plan = faults.FaultPlan([faults.FaultRule("cache.read")])
        with faults.inject(plan), telemetry.collect() as col:
            assert cache.load("figX", self.PARAMS) is None
        assert col.events["cache.corrupt"] == 1
        assert col.counters["cache.miss"] == 1


class TestRunnerCaching:
    @pytest.fixture
    def counted_registry(self, monkeypatch):
        """Wrap every experiment's run() with an invocation counter."""
        counts = {}

        def wrap(exp):
            def run(*args, **kwargs):
                counts[exp.experiment_id] = \
                    counts.get(exp.experiment_id, 0) + 1
                return exp.run(*args, **kwargs)
            return Experiment(exp.experiment_id, exp.description, run,
                              exp.render, exp.scalable)

        wrapped = {k: wrap(v) for k, v in REGISTRY.items()}
        monkeypatch.setattr("repro.experiments.runner.REGISTRY", wrapped)
        return counts

    def test_second_run_performs_no_recomputation(self, counted_registry):
        first = run_experiment("table1", use_cache=True)
        second = run_experiment("table1", use_cache=True)
        assert counted_registry["table1"] == 1
        assert first == second

    def test_refresh_recomputes(self, counted_registry):
        run_experiment("table1", use_cache=True)
        run_experiment("table1", use_cache=True, refresh=True)
        assert counted_registry["table1"] == 2

    def test_no_cache_always_recomputes(self, counted_registry):
        run_experiment("table1")
        run_experiment("table1")
        assert counted_registry["table1"] == 2

    def test_scale_changes_miss(self, counted_registry):
        run_experiment("fig1", scale="test", use_cache=True)
        run_experiment("fig1", scale="test", use_cache=True)
        run_experiment("fig1", scale="bench", use_cache=True)
        assert counted_registry["fig1"] == 2

    def test_out_dir_bypasses_cache_for_full_reports(self, tmp_path,
                                                     counted_registry):
        """--out needs the live result object for the structured JSON,
        so it always recomputes (and never serves a text-only hit)."""
        run_experiment("table1", use_cache=True)
        out = tmp_path / "reports"
        text = run_experiment("table1", use_cache=True, out_dir=str(out))
        assert counted_registry["table1"] == 2
        assert (out / "table1.txt").read_text().rstrip("\n") == text
        assert (out / "table1.json").exists()

    def test_wallclock_measuring_run_is_never_cached(self, monkeypatch):
        """fig6 --measure measures this machine; replaying a stale
        timing would masquerade as a fresh measurement."""
        from repro.engine import ExecPlan
        calls = {"n": 0}

        def run(plan=None):
            calls["n"] += 1
            return []

        fake = Experiment("fig6", "fake", run, lambda rows: "report",
                          False, measures_wallclock=True)
        monkeypatch.setattr("repro.experiments.runner.REGISTRY",
                            {"fig6": fake})
        measured = ExecPlan(measure=True)
        run_experiment("fig6", plan=measured, use_cache=True)
        run_experiment("fig6", plan=measured, use_cache=True)
        assert calls["n"] == 2
        # The model-only variant stays cacheable.
        run_experiment("fig6", use_cache=True)
        run_experiment("fig6", use_cache=True)
        assert calls["n"] == 3

    def test_cli_single_uses_cache(self, counted_registry, capsys):
        assert main(["table1", "--scale", "test"]) == 0
        capsys.readouterr()
        assert main(["table1", "--scale", "test"]) == 0
        assert "(cached)" in capsys.readouterr().out
        assert counted_registry["table1"] == 1

    def test_cli_all_uses_cache(self, monkeypatch, capsys):
        """The acceptance criterion: a second ``--all`` invocation with
        unchanged params recomputes nothing.  A two-entry registry keeps
        the test fast; the real registry's modules are each exercised
        end-to-end by tests/test_experiments_smoke.py."""
        counts = {"a": 0, "b": 0}

        def make(name):
            def run(scale):
                counts[name] += 1
                return f"{name}@{scale}"
            return Experiment(name, f"fake {name}", run, str, True)

        monkeypatch.setattr("repro.experiments.runner.REGISTRY",
                            {n: make(n) for n in counts})
        assert main(["--all", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "===== a =====" in out and "===== b =====" in out
        assert "(cached)" not in out
        assert main(["--all", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert out.count("(cached)") == 2
        assert counts == {"a": 1, "b": 1}
        # The positional spelling is equivalent.
        assert main(["all", "--scale", "test"]) == 0
        assert counts == {"a": 1, "b": 1}
        # --all plus a conflicting named experiment is an error, not a
        # silent run-everything.
        with pytest.raises(SystemExit):
            main(["a", "--all"])

    def test_cli_no_cache_flag(self, counted_registry, capsys):
        assert main(["table1", "--no-cache"]) == 0
        assert main(["table1", "--no-cache"]) == 0
        assert counted_registry["table1"] == 2

    def test_code_change_invalidates(self, counted_registry, monkeypatch):
        run_experiment("table1", use_cache=True)
        monkeypatch.setattr("repro.experiments.cache.code_digest",
                            lambda: "deadbeef" * 4)
        run_experiment("table1", use_cache=True)
        assert counted_registry["table1"] == 2

    def test_entries_are_json_with_metadata(self, counted_registry):
        run_experiment("table1", use_cache=True)
        directory = cache.cache_directory()
        names = [n for n in os.listdir(directory)
                 if n.startswith("table1-")]
        assert len(names) == 1
        with open(os.path.join(directory, names[0])) as f:
            entry = json.load(f)
        assert entry["elapsed_seconds"] >= 0.0
        assert entry["params"] == {}
