"""Deterministic fault injection (:mod:`repro.faults`) and the recovery
paths it exercises: trigger semantics and schedule determinism, the
zero-cost disabled path, the compiled -> batch -> serial degradation
ladder (bit-identical at every rung), and worker-crash recovery in the
parallel sweep runner (``kill`` mode, pool restart, deterministic
merge)."""

import threading

import numpy as np
import pytest

from repro import faults, telemetry
from repro.arith import standard_backends
from repro.core.accuracy import measure_pairs
from repro.core.sweep import FIG3_BINS, plan_chunks
from repro.engine import ExecPlan, kernels
from repro.engine.compiled import plan_compiled_kernels
from repro.engine.posit_batch import BatchPosit
from repro.engine.runner import run_sweep_parallel
from repro.faults import FaultPlan, FaultRule, InjectedFault
from repro.formats.posit import PositEnv

BINS = (FIG3_BINS[0], FIG3_BINS[4], FIG3_BINS[-1])


@pytest.fixture(autouse=True)
def _clean_quarantine():
    """Quarantine is process-wide state; never leak it across tests."""
    faults.reset_quarantine()
    yield
    faults.reset_quarantine()


def _hmm_arrays(bp, h=4, m=5, b_sz=6, t_len=8, seed=0):
    rng = np.random.default_rng(seed)

    def rows(shape):
        vals = rng.uniform(0.05, 1.0, size=shape)
        return bp.from_floats(vals / vals.sum(axis=-1, keepdims=True))

    return (rows((h, h)), rows((h, m)), rows((h,)),
            rng.integers(0, m, size=(b_sz, t_len)))


class TestTriggers:
    def test_disabled_path_is_a_noop(self):
        assert faults.active() is None
        assert faults.fire("kernel.forward_batch") is None
        assert faults._active_plans == 0

    def test_error_mode_raises_with_site(self):
        plan = FaultPlan([FaultRule("spot")])
        with faults.inject(plan):
            with pytest.raises(InjectedFault) as err:
                faults.fire("spot")
        assert err.value.site == "spot"
        assert plan.fired == [("spot", 0, "error")]

    def test_scope_exit_disarms(self):
        with faults.inject(FaultPlan([FaultRule("spot")])):
            pass
        assert faults.fire("spot") is None

    def test_nth_call_triggers(self):
        plan = FaultPlan([FaultRule("s", at=(1, 3))])
        with faults.inject(plan):
            hits = []
            for i in range(5):
                try:
                    faults.fire("s")
                    hits.append(False)
                except InjectedFault:
                    hits.append(True)
        assert hits == [False, True, False, True, False]

    def test_every_triggers(self):
        plan = FaultPlan([FaultRule("s", mode="corrupt", every=3)])
        with faults.inject(plan):
            modes = [faults.fire("s") for _ in range(7)]
        assert modes == [None, None, "corrupt", None, None, "corrupt",
                         None]

    def test_max_fires_retires_the_rule(self):
        plan = FaultPlan([FaultRule("s", mode="corrupt", max_fires=2)])
        with faults.inject(plan):
            modes = [faults.fire("s") for _ in range(4)]
        assert modes == ["corrupt", "corrupt", None, None]

    def test_prefix_site_matching(self):
        plan = FaultPlan([FaultRule("kernel.*", mode="corrupt")])
        with faults.inject(plan):
            assert faults.fire("kernel.forward_batch") == "corrupt"
            assert faults.fire("kernel.pbd_pvalue_batch") == "corrupt"
            assert faults.fire("cache.read") is None

    def test_probabilistic_schedule_is_seed_deterministic(self):
        def schedule(seed):
            plan = FaultPlan([FaultRule("s", mode="corrupt", p=0.5)],
                             seed=seed)
            with faults.inject(plan):
                for _ in range(64):
                    faults.fire("s")
            return list(plan.fired)

        first, again = schedule(11), schedule(11)
        assert first == again
        assert 0 < len(first) < 64          # p=0.5 actually thins
        assert schedule(12) != first        # the seed is the stream

    def test_key_controls_the_draw_not_the_counter(self):
        plan = FaultPlan([FaultRule("s", mode="corrupt", p=0.5)], seed=3)
        with faults.inject(plan):
            first = faults.fire("s", key=("chunk", 0))
            # Same key, same decision — call count does not matter.
            assert faults.fire("s", key=("chunk", 0)) == first

    def test_kill_degrades_to_error_where_not_allowed(self):
        plan = FaultPlan([FaultRule("s", mode="kill")])
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                faults.fire("s", kill_ok=False)

    def test_delay_mode_sleeps_and_reports(self):
        plan = FaultPlan([FaultRule("s", mode="delay", delay_s=0.0)])
        with faults.inject(plan):
            assert faults.fire("s") == "delay"

    def test_injection_emits_telemetry_event(self):
        with telemetry.collect() as col:
            with faults.inject(FaultPlan([FaultRule("s",
                                                    mode="corrupt")])):
                faults.fire("s")
        assert col.events["faults.injected.s"] == 1

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="mode"):
            FaultRule("s", mode="explode")
        with pytest.raises(ValueError, match="p must"):
            FaultRule("s", p=1.5)
        with pytest.raises(ValueError):
            FaultRule("s", every=-1)

    def test_global_injection_reaches_other_threads(self):
        """Executor threads and server tasks never inherit the
        injecting context — ``globally=True`` is how the chaos harness
        reaches them."""
        seen = []

        def probe():
            try:
                faults.fire("s")
                seen.append(None)
            except InjectedFault:
                seen.append("error")

        with faults.inject(FaultPlan([FaultRule("s")]), globally=True):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == ["error"]

    def test_pickled_plan_replays_the_same_schedule(self):
        import pickle
        plan = FaultPlan([FaultRule("s", mode="corrupt", p=0.5)], seed=9)
        with faults.inject(plan):
            want = [faults.fire("s", key=i) for i in range(16)]
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fired == []            # counters restart in workers
        with faults.inject(clone):
            got = [faults.fire("s", key=i) for i in range(16)]
        assert got == want
        assert clone.fired == plan.fired


class TestKernelSites:
    def test_kernel_site_raises_inside_the_call(self):
        bp = BatchPosit(PositEnv(16, 1))
        a, b, pi, obs = _hmm_arrays(bp)
        plan = FaultPlan([FaultRule("kernel.forward_batch")])
        with faults.inject(plan), telemetry.collect() as col:
            with pytest.raises(InjectedFault):
                kernels.forward_batch(bp, a, b, pi, obs)
        assert col.events["faults.injected.kernel.forward_batch"] == 1
        # Disarmed again: the same call succeeds.
        kernels.forward_batch(bp, a, b, pi, obs)


class TestDegradationLadder:
    def test_compiled_tier_degrades_to_batch_bit_identically(self):
        bp = BatchPosit(PositEnv(64, 12))
        a, b, pi, obs = _hmm_arrays(bp)
        want = kernels.forward_batch(bp, a, b, pi, obs)
        plan = ExecPlan(compiled=True)
        rule = FaultPlan([FaultRule("compiled.forward", max_fires=1)])
        with faults.inject(rule), telemetry.collect() as col:
            got = kernels.forward_batch(bp, a, b, pi, obs, plan=plan)
        assert np.array_equal(want, got)
        assert col.events["faults.degraded.compiled"] == 1
        assert faults.quarantined_tiers() == frozenset({"compiled"})

    def test_quarantine_skips_tier_selection(self):
        from repro import nd
        bp = BatchPosit(PositEnv(64, 12))
        fa = nd.wrap(bp.ones((2, 2)), bb=bp)
        plan = ExecPlan(compiled=True)
        assert plan_compiled_kernels(plan, fa, fa) is not None
        faults.quarantine("compiled")
        assert plan_compiled_kernels(plan, fa, fa) is None
        faults.reset_quarantine()
        assert plan_compiled_kernels(plan, fa, fa) is not None

    def test_quarantined_tier_counts_fallbacks(self):
        faults.quarantine("compiled")
        with telemetry.collect() as col:
            assert faults.quarantined("compiled") is True
        assert col.counters["faults.fallback.compiled"] == 1

    def test_batch_tier_degrades_to_scalar_identically(self):
        backend = standard_backends()["posit(64,12)"]
        (chunk,) = plan_chunks("mul", [BINS[1]], per_bin=8, seed=1,
                               chunk_size=8)
        pairs = chunk.generate()
        want = measure_pairs(backend, "mul", pairs, batch=False)
        plan = FaultPlan([FaultRule("batch.measure", max_fires=1)])
        with faults.inject(plan), telemetry.collect() as col:
            got = measure_pairs(backend, "mul", pairs, batch=True)
        assert got == want
        assert col.events["faults.degraded.batch"] == 1
        # Quarantined for the process: later calls keep the scalar
        # path without another failure.
        assert measure_pairs(backend, "mul", pairs, batch=True) == want
        assert faults.quarantined_tiers() == frozenset({"batch"})


class TestRunnerCrashRecovery:
    # Pinned so the blake2b stream kills some attempt-0 chunks but no
    # chunk on all three attempts (budget DEFAULT_CHUNK_RETRIES=2) —
    # asserted below, not assumed.
    KILL_SEED, KILL_P = 5, 0.4

    def _plan(self):
        return FaultPlan([FaultRule("runner.chunk", mode="kill",
                                    p=self.KILL_P)], seed=self.KILL_SEED)

    def _sweep(self, n_workers):
        backends = standard_backends()
        return run_sweep_parallel("add", backends, per_bin=12, bins=BINS,
                                  seed=0, n_workers=n_workers,
                                  chunk_size=5)

    @staticmethod
    def _rows(result):
        return {(b, f): result.boxes[b][f].row()
                for b in result.boxes for f in result.boxes[b]}

    def test_injected_worker_kills_do_not_change_results(self):
        want = self._rows(self._sweep(n_workers=0))

        # Inline: kill degrades to an in-place error, retried in place.
        inline_plan = self._plan()
        with faults.inject(inline_plan), telemetry.collect() as col:
            inline = self._rows(self._sweep(n_workers=0))
        assert inline == want
        assert inline_plan.fired                 # the storm happened
        assert col.events["runner.chunk_retry"] >= len(inline_plan.fired)

        # Pooled: kill hard-exits the worker (exit code 86), breaking
        # the executor; failed chunks resubmit on a fresh pool.
        with faults.inject(self._plan()), telemetry.collect() as col:
            pooled = self._rows(self._sweep(n_workers=2))
        assert pooled == want
        assert col.events["runner.pool_restart"] >= 1
        assert col.events["runner.chunk_retry"] >= 1

    def test_retried_attempts_draw_fresh_decisions(self):
        """The site key carries the attempt number, so a chunk killed
        at attempt 0 is *not* doomed at attempt 1."""
        plan = self._plan()
        chunks = plan_chunks("add", BINS, per_bin=12, seed=0,
                             chunk_size=5)
        attempt0 = [c for c in chunks if plan._unit(
            "runner.chunk",
            (c.op, c.bin_range, c.chunk_index, 0)) < self.KILL_P]
        assert attempt0                          # some chunks do die
        for c in chunks:
            draws = [plan._unit("runner.chunk",
                                (c.op, c.bin_range, c.chunk_index, a))
                     for a in range(3)]
            assert min(draws) < 1.0              # sanity
            assert not all(d < self.KILL_P for d in draws)

    def test_exhausted_retry_budget_raises(self):
        plan = FaultPlan([FaultRule("runner.chunk")])  # every attempt
        with faults.inject(plan):
            with pytest.raises(InjectedFault):
                run_sweep_parallel("add", standard_backends(), per_bin=4,
                                   bins=[BINS[0]], seed=0, n_workers=0,
                                   chunk_size=4, max_chunk_retries=1)
        assert [mode for _s, _t, mode in plan.fired] == ["error"] * 2
