"""Baum-Welch training tests: EM invariants per backend, and the paper's
'underflow prevents convergence' motivation made concrete."""

import math

import numpy as np
import pytest

from repro.apps.baum_welch import baum_welch, improvement_decades
from repro.arith import BigFloatBackend, Binary64Backend, LogSpaceBackend, PositBackend
from repro.data import sample_hcg_like_hmm, sample_hmm
from repro.formats import PositEnv


@pytest.fixture(scope="module")
def train_hmm():
    # Short sequence, small model: magnitudes stay within binary64.
    return sample_hmm(3, 4, 25, seed=31)


class TestEMInvariants:
    def test_likelihood_monotone_oracle(self, train_hmm):
        trace = baum_welch(train_hmm, BigFloatBackend(), iterations=4)
        assert not trace.degenerate
        assert trace.monotone_increasing()

    def test_likelihood_monotone_binary64_in_range(self, train_hmm):
        trace = baum_welch(train_hmm, Binary64Backend(), iterations=4)
        assert not trace.degenerate
        assert trace.monotone_increasing()

    def test_likelihood_monotone_logspace(self, train_hmm):
        trace = baum_welch(train_hmm, LogSpaceBackend(), iterations=4)
        assert not trace.degenerate
        assert trace.monotone_increasing(tol=1e-4)

    def test_likelihood_monotone_posit(self, train_hmm):
        trace = baum_welch(train_hmm, PositBackend(PositEnv(64, 12)),
                           iterations=4)
        assert not trace.degenerate
        assert trace.monotone_increasing(tol=1e-4)

    def test_training_improves_likelihood(self, train_hmm):
        trace = baum_welch(train_hmm, BigFloatBackend(), iterations=5)
        assert improvement_decades(trace) > 0.0

    def test_trained_model_rows_normalized(self, train_hmm):
        trace = baum_welch(train_hmm, BigFloatBackend(), iterations=3)
        a, b, pi, _ = trace.model.as_float_arrays()
        assert np.allclose(a.sum(axis=1), 1.0, atol=1e-9)
        assert np.allclose(b.sum(axis=1), 1.0, atol=1e-9)
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)

    def test_backends_agree_on_trajectory(self, train_hmm):
        ref = baum_welch(train_hmm, BigFloatBackend(), iterations=3)
        log = baum_welch(train_hmm, LogSpaceBackend(), iterations=3)
        posit = baum_welch(train_hmm, PositBackend(PositEnv(64, 12)),
                           iterations=3)
        for other in (log, posit):
            assert np.allclose(other.log2_likelihoods,
                               ref.log2_likelihoods, rtol=1e-6)


class TestUnderflowPreventsConvergence:
    """The paper's introduction: 'underflow to zero prevents proper
    convergence and leads to incorrect results.'"""

    @pytest.fixture(scope="class")
    def deep_hmm(self):
        # Likelihood ~2^-6000: far below binary64, easy for log/posit18.
        return sample_hcg_like_hmm(3, 30, seed=17, bits_per_step=200.0)

    def test_binary64_training_degenerates(self, deep_hmm):
        trace = baum_welch(deep_hmm, Binary64Backend(), iterations=3)
        assert trace.degenerate
        assert trace.model is None

    def test_logspace_training_survives(self, deep_hmm):
        trace = baum_welch(deep_hmm, LogSpaceBackend(), iterations=3)
        assert not trace.degenerate
        assert trace.monotone_increasing(tol=1e-3)

    def test_posit18_training_survives(self, deep_hmm):
        trace = baum_welch(deep_hmm, PositBackend(PositEnv(64, 18)),
                           iterations=3)
        assert not trace.degenerate
        assert trace.monotone_increasing(tol=1e-3)

    def test_posit18_matches_oracle_better_than_log(self, deep_hmm):
        """The accuracy advantage carries through training: posit's
        final likelihood is closer to the oracle's."""
        ref = baum_welch(deep_hmm, BigFloatBackend(), iterations=3)
        log = baum_welch(deep_hmm, LogSpaceBackend(), iterations=3)
        posit = baum_welch(deep_hmm, PositBackend(PositEnv(64, 18)),
                           iterations=3)
        ref_final = ref.log2_likelihoods[-1]
        assert abs(posit.log2_likelihoods[-1] - ref_final) <= \
            abs(log.log2_likelihoods[-1] - ref_final) + 1e-9


class TestDivisionSupport:
    def test_all_backends_divide(self):
        for backend in (Binary64Backend(), LogSpaceBackend(),
                        PositBackend(PositEnv(64, 12)), BigFloatBackend()):
            half = backend.from_float(0.5)
            quarter = backend.from_float(0.25)
            got = backend.to_bigfloat(backend.div(quarter, half))
            assert abs(got.to_float() - 0.5) < 1e-12, backend.name

    def test_logspace_div_by_zero(self):
        backend = LogSpaceBackend()
        with pytest.raises(ZeroDivisionError):
            backend.div(backend.one(), backend.zero())

    def test_base_backend_div_raises(self):
        from repro.arith.backend import Backend

        class Stub(Backend):
            name = "stub"

            def from_bigfloat(self, x):
                return x

            def to_bigfloat(self, v):
                return v

            def add(self, a, b):
                return a

            def mul(self, a, b):
                return a

            def zero(self):
                return 0

            def one(self):
                return 1

            def is_zero(self, v):
                return v == 0

        with pytest.raises(NotImplementedError):
            Stub().div(1, 1)
