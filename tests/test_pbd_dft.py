"""Tests for the DFT-CF Poisson-binomial baseline (Hong 2013): agreement
with the recurrence in the bulk, failure in the deep tail."""

import math

import numpy as np
from scipy import stats

from repro.apps import (
    dft_tail_resolution_limit,
    pbd_pmf_dft,
    pbd_pvalue_dft,
    pbd_pvalue_float,
    reference_pvalue,
)
from repro.bigfloat import BigFloat


class TestDFTPMF:
    def test_matches_binomial(self):
        n, p = 20, 0.35
        pmf = pbd_pmf_dft(np.full(n, p))
        expected = stats.binom.pmf(np.arange(n + 1), n, p)
        assert np.allclose(pmf, expected, rtol=1e-9, atol=1e-14)

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        probs = rng.uniform(0.01, 0.9, size=40)
        assert math.isclose(pbd_pmf_dft(probs).sum(), 1.0, rel_tol=1e-12)

    def test_heterogeneous_matches_recurrence(self):
        rng = np.random.default_rng(1)
        probs = rng.uniform(0.05, 0.6, size=25)
        for k in (1, 5, 12):
            dft = pbd_pvalue_dft(probs, k)
            rec = pbd_pvalue_float(probs, k)
            assert math.isclose(dft, rec, rel_tol=1e-9), k

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        probs = rng.uniform(0.001, 0.05, size=60)
        assert (pbd_pmf_dft(probs) >= 0.0).all()


class TestDFTTailBlindness:
    def test_deep_tail_is_noise(self):
        """The paper's p-values live exactly where DFT-CF cannot go: a
        2^-700-ish tail mass is below the method's resolution."""
        probs_f = np.full(40, 1e-6)
        k = 35
        ref = reference_pvalue([BigFloat.from_float(1e-6)] * 40, k)
        assert ref.scale < -600  # truly deep
        dft = pbd_pvalue_dft(probs_f, k)
        # The DFT answer is garbage at this depth: either 0 or dominated
        # by round-off noise near the resolution limit.
        assert dft < dft_tail_resolution_limit()
        assert not math.isclose(dft, ref.to_float() if ref.scale > -1074 else 0.0,
                                rel_tol=0.5) or dft == 0.0

    def test_bulk_still_fine_at_same_size(self):
        probs_f = np.full(40, 0.3)
        k = 15
        dft = pbd_pvalue_dft(probs_f, k)
        expected = stats.binom.sf(k - 1, 40, 0.3)
        assert math.isclose(dft, expected, rel_tol=1e-9)

    def test_resolution_limit_constant(self):
        assert 0.0 < dft_tail_resolution_limit() < 1e-10
