"""Tests for the quire (exact accumulator), fused dot product, and the
FMA operations added to the posit and IEEE environments."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat, relative_error
from repro.formats import BINARY64, PositEnv, Quire, Real, fused_dot_product


def f64_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _libm_fma():
    """math.fma arrived in Python 3.13; use libm directly as the
    independent correctly-rounded-FMA oracle."""
    if hasattr(math, "fma"):
        return math.fma
    import ctypes
    import ctypes.util
    name = ctypes.util.find_library("m") or "libm.so.6"
    try:
        libm = ctypes.CDLL(name)
    except OSError:
        return None
    libm.fma.restype = ctypes.c_double
    libm.fma.argtypes = [ctypes.c_double] * 3
    return libm.fma


FMA_ORACLE = _libm_fma()


class TestQuire:
    def test_empty_quire_is_zero(self):
        env = PositEnv(16, 1)
        assert Quire(env).to_posit() == 0

    def test_single_value_roundtrip(self):
        env = PositEnv(16, 1)
        bits = env.from_float(0.375)
        assert Quire(env).add_posit(bits).to_posit() == bits

    def test_sum_exact_where_sequential_rounds(self):
        """The motivating case: big + tiny + tiny ... accumulates exactly
        in the quire but loses the tinies sequentially."""
        env = PositEnv(8, 0)
        big = env.from_float(64.0)
        tiny = env.from_float(0.25)
        q = Quire(env)
        for bits in (big, tiny, tiny, tiny, tiny):
            q.add_posit(bits)
        assert q.to_real().to_float() == 65.0
        seq = big
        for _ in range(4):
            seq = env.add(seq, tiny)
        assert env.to_float(seq) != 65.0  # sequential loses them

    def test_add_sub_cancel(self):
        env = PositEnv(16, 1)
        a = env.from_float(0.7)
        q = Quire(env).add_posit(a).sub_posit(a)
        assert q.to_posit() == 0

    def test_nar_propagates(self):
        env = PositEnv(16, 1)
        q = Quire(env).add_posit(env.nar)
        assert q.is_nar
        assert q.to_posit() == env.nar
        with pytest.raises(ValueError):
            q.to_real()

    def test_clear(self):
        env = PositEnv(16, 1)
        q = Quire(env).add_posit(env.from_float(1.0)).clear()
        assert q.to_posit() == 0 and not q.is_nar

    def test_product_of_minpos_fits(self):
        """The quire must hold minpos^2 exactly (the standard's sizing
        requirement)."""
        env = PositEnv(16, 1)
        q = Quire(env).add_product(env.minpos, env.minpos)
        r = q.to_real()
        assert r.scale == 2 * env.min_scale

    def test_fused_dot_product_single_rounding(self):
        env = PositEnv(16, 1)
        xs = [env.from_float(v) for v in (0.5, 0.25, 0.125, 0.1)]
        ys = [env.from_float(v) for v in (0.9, 0.8, 0.7, 0.6)]
        got = fused_dot_product(env, xs, ys)
        exact = Real.zero()
        for x, y in zip(xs, ys):
            exact = exact.add(env.decode(x).mul(env.decode(y)))
        assert got == env.encode_real(exact)

    def test_fdp_at_least_as_accurate_as_sequential(self):
        env = PositEnv(16, 1)
        import random
        rng = random.Random(5)
        xs = [env.from_float(rng.uniform(0.001, 1.0)) for _ in range(24)]
        ys = [env.from_float(rng.uniform(0.001, 1.0)) for _ in range(24)]
        fused = env.to_bigfloat(fused_dot_product(env, xs, ys))
        seq = 0
        for x, y in zip(xs, ys):
            seq = env.add(seq, env.mul(x, y))
        seq_v = env.to_bigfloat(seq)
        exact = BigFloat.zero()
        for x, y in zip(xs, ys):
            exact = exact.add(env.to_bigfloat(x).mul(env.to_bigfloat(y), 512), 512)
        assert relative_error(exact, fused).to_float() <= \
            relative_error(exact, seq_v).to_float() + 1e-18


class TestPositFMA:
    def test_fma_single_rounding_differs_from_two_step(self):
        """Find a case where fma(a,b,c) != add(mul(a,b),c): the double
        rounding must be observable."""
        env = PositEnv(8, 0)
        found = False
        for a in range(1, 64):
            for b in range(1, 64):
                for c in range(1, 64):
                    fused = env.fma(a, b, c)
                    two_step = env.add(env.mul(a, b), c)
                    if fused != two_step:
                        found = True
                        # fused must be the correctly rounded exact value
                        exact = env.decode(a).mul(env.decode(b)).add(env.decode(c))
                        assert fused == env.encode_real(exact)
                        break
                if found:
                    break
            if found:
                break
        assert found

    def test_fma_nar(self):
        env = PositEnv(16, 1)
        one = env.from_float(1.0)
        assert env.fma(env.nar, one, one) == env.nar

    def test_fma_zero_cases(self):
        env = PositEnv(16, 1)
        one = env.from_float(1.0)
        half = env.from_float(0.5)
        assert env.fma(0, one, half) == half
        assert env.fma(one, half, 0) == half
        assert env.fma(0, 0, 0) == 0

    def test_fma_exact_cancellation(self):
        env = PositEnv(16, 1)
        a, b = env.from_float(0.5), env.from_float(0.5)
        c = env.from_float(-0.25)
        assert env.fma(a, b, c) == 0


class TestIEEEFMA:
    @pytest.mark.skipif(FMA_ORACLE is None, reason="no libm fma available")
    def test_fma_matches_libm_fma(self):
        cases = [(0.1, 0.2, 0.3), (1e300, 1e-300, -1.0),
                 (1.5, 2.5, -3.75), (3.0, 1e-320, 1e-320)]
        for a, b, c in cases:
            got = BINARY64.fma(f64_bits(a), f64_bits(b), f64_bits(c))
            expected = FMA_ORACLE(a, b, c)
            assert BINARY64.to_float(got) == expected, (a, b, c)

    def test_fma_single_rounding_observable(self):
        # 1 + 2^-52 - 1 via fma: the exact intermediate survives.
        one = f64_bits(1.0)
        eps = f64_bits(2.0 ** -52)
        sum_bits = BINARY64.fma(one, eps, one)  # 1*eps + 1
        back = BINARY64.add(sum_bits, f64_bits(-1.0))
        assert BINARY64.to_float(back) == 2.0 ** -52

    def test_fma_avoids_intermediate_overflow(self):
        a, b, c = 1e200, 1e200, -math.inf
        got = BINARY64.fma(f64_bits(a), f64_bits(b), f64_bits(c))
        assert BINARY64.to_float(got) == -math.inf

    def test_fma_nan(self):
        got = BINARY64.fma(BINARY64.quiet_nan, f64_bits(1.0), f64_bits(1.0))
        assert math.isnan(BINARY64.to_float(got))


@pytest.mark.skipif(FMA_ORACLE is None, reason="no libm fma available")
@settings(max_examples=150, deadline=None)
@given(st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
       st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
       st.floats(min_value=-1e100, max_value=1e100, allow_nan=False))
def test_ieee_fma_bit_exact_vs_libm(a, b, c):
    """Our exact-compute FMA must agree with glibc's fma bit-for-bit."""
    got = BINARY64.fma(f64_bits(a), f64_bits(b), f64_bits(c))
    expected = FMA_ORACLE(a, b, c)
    if math.isinf(expected):
        return
    assert got == f64_bits(expected)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_quire_matches_exact_sum_of_two(a, b):
    env = PositEnv(16, 1)
    da, db = env.decode(a), env.decode(b)
    from repro.formats.posit import NAR
    if da is NAR or db is NAR:
        return
    q = Quire(env).add_posit(a).add_posit(b)
    assert q.to_posit() == env.add(a, b)  # two-term sums round identically
