"""BatchPosit must be element-exact against the scalar PositEnv.

The scalar environment is itself validated against an independent posit
reference (tests/test_posit_independent_reference.py), so agreement here
chains the batched datapath to that oracle.
"""

import random

import numpy as np
import pytest

from repro.engine import BatchPosit
from repro.formats import PositEnv
from repro.formats.posit import FLUSH, SATURATE


def _special_patterns(env):
    return [0, env.nar, env.minpos, env.maxpos, env.minpos + 1,
            env.maxpos - 1, env.mask, (env.sign_bit + 1) & env.mask,
            env.from_float(1.0), env.from_float(-1.0)]


def _random_patterns(env, n, seed):
    rng = random.Random(seed)
    return [rng.getrandbits(env.nbits) for _ in range(n)]


def _check_ops(env, a_list, b_list):
    bp = BatchPosit(env)
    a = np.array(a_list, dtype=np.uint64)
    b = np.array(b_list, dtype=np.uint64)
    got_add = bp.add(a, b)
    got_mul = bp.mul(a, b)
    for i, (pa, pb) in enumerate(zip(a_list, b_list)):
        assert int(got_add[i]) == env.add(pa, pb), \
            f"add({pa:#x}, {pb:#x}) in {env!r}"
        assert int(got_mul[i]) == env.mul(pa, pb), \
            f"mul({pa:#x}, {pb:#x}) in {env!r}"


@pytest.mark.parametrize("nbits,es", [(64, 9), (64, 12), (64, 18),
                                      (32, 2), (16, 1), (8, 0)])
@pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
def test_random_patterns_element_exact(nbits, es, underflow):
    env = PositEnv(nbits, es, underflow)
    n = 300
    a = _random_patterns(env, n, seed=nbits * 100 + es)
    b = _random_patterns(env, n, seed=nbits * 100 + es + 1)
    spec = _special_patterns(env)
    _check_ops(env, a + spec, b + list(reversed(spec)))


def test_special_cross_product_64_12():
    env = PositEnv(64, 12)
    spec = _special_patterns(env)
    a = [x for x in spec for _ in spec]
    b = [y for _ in spec for y in spec]
    _check_ops(env, a, b)


def test_deep_magnitudes_and_cancellation():
    """Operand pairs engineered into the hard corners: huge alignment
    gaps (sticky-only contributions), near-total cancellation, and
    sub-minpos results in both underflow modes."""
    for underflow in (SATURATE, FLUSH):
        env = PositEnv(64, 9, underflow)
        tiny = env.minpos
        big = env.maxpos
        x = env.from_float(1.0 + 2 ** -40)
        y = env.neg(env.from_float(1.0))
        pairs = [
            (tiny, tiny),                  # deepest same-sign add
            (tiny, env.neg(tiny)),         # exact cancellation -> zero
            (big, tiny),                   # alignment gap >> 128 bits
            (big, env.neg(tiny)),          # sticky borrow path
            (x, y),                        # catastrophic cancellation
            (tiny, env.neg(env.minpos + 1)),
            (env.from_float(2.0 ** -300), env.from_float(2.0 ** -300)),
        ]
        _check_ops(env, [p[0] for p in pairs], [p[1] for p in pairs])
        # mul products land below minpos -> saturate/flush divergence
        deep = env.from_float(2.0 ** -1000)
        muls = [(deep, deep), (tiny, tiny), (tiny, env.neg(tiny))]
        _check_ops(env, [p[0] for p in muls], [p[1] for p in muls])


@pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
def test_exhaustive_posit8(underflow):
    """Every posit(8,0) pattern pair — the full 256x256 space — for
    both add and mul, in both underflow modes."""
    env = PositEnv(8, 0, underflow)
    bp = BatchPosit(env)
    pats = np.arange(256, dtype=np.uint64)
    a, b = [g.ravel() for g in np.meshgrid(pats, pats)]
    got_add = bp.add(a, b)
    got_mul = bp.mul(a, b)
    want_add = np.fromiter(
        (env.add(int(x), int(y)) for x, y in zip(a, b)),
        dtype=np.uint64, count=a.size)
    want_mul = np.fromiter(
        (env.mul(int(x), int(y)) for x, y in zip(a, b)),
        dtype=np.uint64, count=a.size)
    assert (got_add == want_add).all()
    assert (got_mul == want_mul).all()


def test_decode_encode_roundtrip_is_identity():
    env = PositEnv(64, 12)
    bp = BatchPosit(env)
    pats = np.array(_random_patterns(env, 500, seed=7), dtype=np.uint64)
    zero, nar, sign, frac, scale = bp._decode(pats)
    re = bp._encode(sign, scale, frac, np.zeros(pats.shape, bool))
    re = np.where(zero, np.uint64(0), re)
    re = np.where(nar, np.uint64(env.nar), re)
    assert (re == pats).all()


def test_from_floats_matches_scalar():
    env = PositEnv(64, 9)
    bp = BatchPosit(env)
    rng = np.random.default_rng(3)
    xs = np.concatenate([
        rng.uniform(-2.0, 2.0, 200),
        10.0 ** rng.uniform(-308, 308, 200),
        np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, 1e-310]),
    ])
    got = bp.from_floats(xs)
    for i, x in enumerate(xs):
        assert int(got[i]) == env.from_float(float(x)), f"x={x!r}"


def test_to_floats_roundtrip_in_double_range():
    env = PositEnv(64, 9)
    bp = BatchPosit(env)
    xs = np.array([0.0, 1.0, -1.0, 0.3, 2.0 ** -500, -2.0 ** 500])
    back = bp.to_floats(bp.from_floats(xs))
    assert back == pytest.approx(xs, rel=1e-12)
    assert np.isnan(bp.to_floats(np.array([env.nar], dtype=np.uint64)))[0]


def test_rejects_wide_configs():
    with pytest.raises(ValueError):
        BatchPosit(PositEnv(65, 2))


def test_portable_bit_length_matches_python():
    from repro.engine.posit_batch import _bit_length64, _bit_length64_portable
    rng = random.Random(9)
    vals = [0, 1, 2, (1 << 64) - 1, 1 << 63] + \
        [rng.getrandbits(rng.randrange(1, 65)) for _ in range(2000)]
    arr = np.array(vals, dtype=np.uint64)
    want = [v.bit_length() for v in vals]
    assert _bit_length64_portable(arr).tolist() == want
    # The fast path (np.bitwise_count when available) must agree.
    assert _bit_length64(arr).tolist() == want


@pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
def test_exhaustive_posit8_sub_div(underflow):
    """Every posit(8,0) pattern pair for the new native sub and div,
    in both underflow modes — sub must equal add(a, neg(b)) and div the
    correctly rounded quotient (NaR for zero/NaR divisors), exactly as
    the scalar environment computes them."""
    env = PositEnv(8, 0, underflow)
    bp = BatchPosit(env)
    pats = np.arange(256, dtype=np.uint64)
    a, b = [g.ravel() for g in np.meshgrid(pats, pats)]
    got_sub = bp.sub(a, b)
    got_div = bp.div(a, b)
    want_sub = np.fromiter(
        (env.sub(int(x), int(y)) for x, y in zip(a, b)),
        dtype=np.uint64, count=a.size)
    want_div = np.fromiter(
        (env.div(int(x), int(y)) for x, y in zip(a, b)),
        dtype=np.uint64, count=a.size)
    assert (got_sub == want_sub).all()
    assert (got_div == want_div).all()


@pytest.mark.parametrize("nbits,es", [(64, 9), (64, 12), (32, 2), (16, 1)])
def test_random_sub_div_element_exact(nbits, es):
    env = PositEnv(nbits, es)
    bp = BatchPosit(env)
    n = 200
    a_list = _random_patterns(env, n, seed=nbits * 7 + es)
    b_list = _random_patterns(env, n, seed=nbits * 7 + es + 1)
    spec = _special_patterns(env)
    a_list, b_list = a_list + spec, b_list + list(reversed(spec))
    a = np.array(a_list, dtype=np.uint64)
    b = np.array(b_list, dtype=np.uint64)
    got_sub = bp.sub(a, b)
    got_div = bp.div(a, b)
    for i, (pa, pb) in enumerate(zip(a_list, b_list)):
        assert int(got_sub[i]) == env.sub(pa, pb), \
            f"sub({pa:#x}, {pb:#x}) in {env!r}"
        assert int(got_div[i]) == env.div(pa, pb), \
            f"div({pa:#x}, {pb:#x}) in {env!r}"


@pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
def test_unpacked_roundtrip_all_8bit_patterns(underflow):
    """decode_once -> encode_once is the identity on every posit(8,0)
    pattern (the decoded-plane entry/exit contract), in both modes."""
    env = PositEnv(8, 0, underflow)
    bp = BatchPosit(env)
    pats = np.arange(256, dtype=np.uint64)
    u = bp.decode_once(pats)
    assert (bp.encode_once(u) == pats).all()


class TestFusedPlaneKernels:
    """dot/sum/axpy run through the decoded plane; they must stay
    op-for-op identical to the base mul-then-fold implementations,
    zeros and NaR lanes included."""

    def _operands(self, env, shape, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 1 << env.nbits, shape, dtype=np.uint64)
        flat = arr.reshape(-1)
        flat[0] = 0
        flat[1 % flat.size] = env.nar
        flat[2 % flat.size] = env.minpos
        return arr

    @pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
    def test_dot_matches_base_fold(self, underflow):
        from repro.engine.batch import BatchBackend
        env = PositEnv(16, 1, underflow)
        bp = BatchPosit(env)
        a = self._operands(env, (6, 5), 1)
        b = self._operands(env, (6, 5), 2)
        for axis in (-1, 0, 1):
            want = BatchBackend.dot(bp, a, b, axis=axis)
            assert (bp.dot(a, b, axis=axis) == want).all(), axis
        # Broadcasting contraction (the forward algorithm's shape).
        alpha = self._operands(env, (4, 3, 1), 3)
        trans = self._operands(env, (3, 3), 4)
        want = BatchBackend.dot(bp, alpha, trans, axis=1)
        assert (bp.dot(alpha, trans, axis=1) == want).all()

    def test_sum_matches_base_fold(self):
        from repro.engine.batch import BatchBackend
        env = PositEnv(16, 1)
        bp = BatchPosit(env)
        arr = self._operands(env, (5, 7), 5)
        for axis in (0, 1, -1):
            want = BatchBackend.sum(bp, arr, axis=axis)
            assert (bp.sum(arr, axis=axis) == want).all(), axis

    def test_axpy_matches_two_ops(self):
        env = PositEnv(16, 1)
        bp = BatchPosit(env)
        a = self._operands(env, (40,), 6)
        x = self._operands(env, (40,), 7)
        y = self._operands(env, (40,), 8)
        assert (bp.axpy(a, x, y) == bp.add(bp.mul(a, x), y)).all()

    def test_mul_acc_chain_matches_pattern_chain(self):
        env = PositEnv(8, 0)
        bp = BatchPosit(env)
        rng = np.random.default_rng(9)
        cols = [rng.integers(0, 256, 50, dtype=np.uint64)
                for _ in range(4)]
        acc_u = bp.zeros_unpacked((50,))
        acc_p = bp.zeros((50,))
        for c in cols:
            cu = bp.decode_once(c)
            acc_u = bp.mul_acc(acc_u, cu, cu)
            acc_p = bp.add(acc_p, bp.mul(c, c))
        assert (bp.encode_once(acc_u) == acc_p).all()


def test_zero_d_ops_are_warning_free():
    """0-d operands run without the PR 4 lift workaround: the intended
    uint64 wraparound is silenced by targeted np.errstate suppression,
    so user-level warning filters stay clean."""
    import warnings

    env = PositEnv(64, 12)
    bp = BatchPosit(env)
    x = np.asarray(np.uint64(env.from_float(0.3)))
    y = np.asarray(np.uint64(env.from_float(-0.7)))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert int(bp.add(x, y)) == env.add(int(x), int(y))
        assert int(bp.mul(x, y)) == env.mul(int(x), int(y))
        assert int(bp.sub(x, y)) == env.sub(int(x), int(y))
        assert int(bp.div(x, y)) == env.div(int(x), int(y))
        assert bp.add(x, y).shape == ()
