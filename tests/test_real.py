"""Tests for the exact dyadic Real carrier type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat
from repro.formats import Real


class TestCanonical:
    def test_zero(self):
        z = Real(0, 0, 99)
        assert z.is_zero() and z.exponent == 0 and z.sign == 0

    def test_odd_mantissa(self):
        r = Real(0, 12, 0)  # 12 = 3 * 4
        assert r.mantissa == 3 and r.exponent == 2

    def test_negative_mantissa_rejected(self):
        with pytest.raises(ValueError):
            Real(0, -1, 0)

    def test_scale(self):
        assert Real(0, 3, -1).scale == 0  # 1.5
        assert Real(0, 1, -10).scale == -10
        with pytest.raises(ValueError):
            Real.zero().scale


class TestConversions:
    def test_from_to_float(self):
        for v in (1.0, -2.5, 0.1, 1e-300):
            assert Real.from_float(v).to_float() == v

    def test_from_int(self):
        assert Real.from_int(-6) == Real(1, 6, 0)

    def test_bigfloat_roundtrip(self):
        x = BigFloat.exp2(-500_000)
        assert Real.from_bigfloat(x).to_bigfloat() == x


class TestArithmetic:
    def test_add(self):
        assert Real.from_int(3).add(Real.from_int(5)) == Real.from_int(8)

    def test_add_zero(self):
        x = Real.from_float(0.25)
        assert x.add(Real.zero()) == x
        assert Real.zero().add(x) == x

    def test_cancellation(self):
        x = Real.from_float(1.5)
        assert x.add(x.neg()).is_zero()

    def test_sub(self):
        assert Real.from_int(10).sub(Real.from_int(4)) == Real.from_int(6)

    def test_mul(self):
        assert Real.from_int(-6).mul(Real.from_int(7)) == Real.from_int(-42)

    def test_mul_zero(self):
        assert Real.from_int(5).mul(Real.zero()).is_zero()

    def test_abs_neg(self):
        x = Real.from_int(-3)
        assert x.abs() == Real.from_int(3)
        assert x.neg() == Real.from_int(3)
        assert Real.zero().neg().is_zero()

    def test_cmp(self):
        assert Real.from_int(1).cmp(Real.from_int(2)) < 0
        assert Real.from_float(0.5).cmp(Real.from_float(0.5)) == 0


@settings(max_examples=150, deadline=None)
@given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9),
       st.integers(-50, 50), st.integers(-50, 50))
def test_exact_field_properties(a, b, ea, eb):
    """Real arithmetic is *exact*: it must agree with integer arithmetic
    scaled to a common denominator."""
    x = Real.from_int(a).mul(Real(0, 1, ea))
    y = Real.from_int(b).mul(Real(0, 1, eb))
    shift = 60  # bring both to a common integer grid
    xv = a * (1 << (ea + shift))
    yv = b * (1 << (eb + shift))
    total = x.add(y)
    if total.is_zero():
        assert xv + yv == 0
    else:
        got = (total.mantissa if total.sign == 0 else -total.mantissa)
        assert got * (1 << (total.exponent + shift)) == xv + yv
    prod = x.mul(y)
    if prod.is_zero():
        assert xv * yv == 0
