"""IEEE softfloat tests: bit-for-bit agreement with native binary64 and
numpy's binary32, plus subnormal/infinity edge behaviour."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat
from repro.formats import BINARY32, BINARY64, IEEEEnv, Real
from repro.formats.ieee import INF, NAN, ZERO


def f64_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_f64(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b))[0]


class TestBinary64Layout:
    def test_constants(self):
        assert BINARY64.nbits == 64
        assert BINARY64.bias == 1023
        assert BINARY64.emin == -1022
        assert BINARY64.smallest_positive_scale() == -1074
        assert BINARY64.smallest_normal_scale() == -1022
        assert BINARY64.name == "binary64"

    def test_largest_finite(self):
        assert BINARY64.largest_finite().to_float() == math.ldexp(2 - 2**-52, 1023)

    @pytest.mark.parametrize("v", [0.0, 1.0, -1.0, 0.1, math.pi, 1e308,
                                   5e-324, 2.2250738585072014e-308, -6.25])
    def test_from_float_matches_struct(self, v):
        assert BINARY64.from_float(v) == f64_bits(v)

    def test_special_encodings(self):
        assert BINARY64.from_float(math.inf) == f64_bits(math.inf)
        assert BINARY64.from_float(-math.inf) == f64_bits(-math.inf)
        assert BINARY64.from_float(-0.0) == f64_bits(-0.0)
        nan_bits = BINARY64.from_float(math.nan)
        assert math.isnan(bits_f64(nan_bits))

    def test_decode_specials(self):
        assert BINARY64.decode(0) is ZERO
        assert BINARY64.decode(f64_bits(math.inf)) is INF
        assert BINARY64.decode(BINARY64.quiet_nan) is NAN

    def test_subnormal_decode(self):
        d = BINARY64.decode(f64_bits(5e-324))
        assert isinstance(d, Real)
        assert d.scale == -1074


class TestBinary64Arithmetic:
    def test_add_simple(self):
        a, b = f64_bits(1.5), f64_bits(2.25)
        assert bits_f64(BINARY64.add(a, b)) == 3.75

    def test_inf_minus_inf_is_nan(self):
        pinf, ninf = f64_bits(math.inf), f64_bits(-math.inf)
        assert math.isnan(bits_f64(BINARY64.add(pinf, ninf)))

    def test_inf_times_zero_is_nan(self):
        assert math.isnan(bits_f64(BINARY64.mul(f64_bits(math.inf), 0)))

    def test_overflow_to_inf(self):
        big = f64_bits(1.7e308)
        assert bits_f64(BINARY64.add(big, big)) == math.inf

    def test_underflow_to_zero(self):
        tiny = f64_bits(5e-324)
        assert bits_f64(BINARY64.mul(tiny, tiny)) == 0.0

    def test_gradual_underflow(self):
        # 2**-1073 = 2 * 2**-1074 stays representable as a subnormal.
        x = f64_bits(math.ldexp(1.0, -1060))
        y = f64_bits(math.ldexp(1.0, -13))
        assert bits_f64(BINARY64.mul(x, y)) == math.ldexp(1.0, -1073)

    def test_signed_zero_add(self):
        nz = f64_bits(-0.0)
        assert BINARY64.add(nz, nz) == nz
        assert BINARY64.add(nz, 0) == 0


class TestBinary32VsNumpy:
    CASES = [(1.5, 2.25), (0.1, 0.2), (1e30, 1e30), (1e-40, 1e-40),
             (3.14159, -2.71828), (1e-45, 1e-45)]

    @pytest.mark.parametrize("a,b", CASES)
    def test_add_matches_numpy(self, a, b):
        fa, fb = np.float32(a), np.float32(b)
        expected = np.float32(fa + fb)
        got = BINARY32.to_float(BINARY32.add(BINARY32.from_float(float(fa)),
                                             BINARY32.from_float(float(fb))))
        assert np.float32(got) == expected or (math.isinf(got) and np.isinf(expected))

    @pytest.mark.parametrize("a,b", CASES)
    def test_mul_matches_numpy(self, a, b):
        fa, fb = np.float32(a), np.float32(b)
        expected = np.float32(fa * fb)
        got = BINARY32.to_float(BINARY32.mul(BINARY32.from_float(float(fa)),
                                             BINARY32.from_float(float(fb))))
        assert np.float32(got) == expected or (math.isinf(got) and np.isinf(expected))


class TestCustomFormat:
    def test_binary16_like(self):
        env = IEEEEnv(5, 11)
        assert env.nbits == 16
        assert env.bias == 15
        assert env.smallest_positive_scale() == -24

    def test_name(self):
        assert IEEEEnv(8, 24).name == "binary32"
        assert IEEEEnv(5, 11).name == "ieee(5,11)"

    def test_rejects_tiny_widths(self):
        with pytest.raises(ValueError):
            IEEEEnv(1, 10)
        with pytest.raises(ValueError):
            IEEEEnv(8, 1)


finite64 = st.floats(allow_nan=False, allow_infinity=False, width=64)


@settings(max_examples=300, deadline=None)
@given(finite64, finite64)
def test_add_bit_exact_vs_native(a, b):
    got = BINARY64.add(f64_bits(a), f64_bits(b))
    assert got == f64_bits(a + b)


@settings(max_examples=300, deadline=None)
@given(finite64, finite64)
def test_mul_bit_exact_vs_native(a, b):
    got = BINARY64.mul(f64_bits(a), f64_bits(b))
    assert got == f64_bits(a * b)


@settings(max_examples=200, deadline=None)
@given(finite64)
def test_roundtrip_bits(a):
    bits = f64_bits(a)
    assert BINARY64.from_float(BINARY64.to_float(bits)) == bits


@settings(max_examples=200, deadline=None)
@given(finite64)
def test_to_bigfloat_exact(a):
    if a == 0.0:
        return
    assert BINARY64.to_bigfloat(f64_bits(a)) == BigFloat.from_float(a)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_binary16_add_landed_on_neighbor(a, b):
    """For a custom format with no native oracle, check the correctly-
    rounded property structurally: result is one of the two values
    bracketing the exact sum."""
    env = IEEEEnv(5, 11)
    da, db = env.decode(a), env.decode(b)
    if not (isinstance(da, Real) and isinstance(db, Real)):
        return
    exact = da.add(db).to_bigfloat()
    got = env.decode(env.add(a, b))
    if not isinstance(got, Real):
        return  # overflowed to inf
    gbf = got.to_bigfloat()
    # error bounded by one ulp of the result's binade
    if exact.is_zero():
        assert gbf.is_zero() or abs(gbf.scale) > 0
        return
    err = gbf.sub(exact, 64).abs()
    if not err.is_zero():
        assert err.scale <= max(exact.scale, env.smallest_positive_scale()) - env.frac_bits + 1
