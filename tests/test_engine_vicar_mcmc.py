"""Batched ViCAR/MCMC/backward kernels vs the scalar apps.

The contract mirrors the forward/PBD batch kernels: bit-for-bit
equality with the scalar loops for binary64, posit, LNS and
sequential-mode log-space, on the Figure 6/Figure 10 model shapes
(H in {13, 32}, magnitude-compressed to the deep-underflow regimes).
"""

import numpy as np
import pytest

from repro.apps.hmm import forward, forward_models_batch
from repro.apps.hmm_extra import backward, backward_batch
from repro.apps.mcmc import run_chain, run_chains
from repro.apps.vicar import VicarConfig, generate_instances, run_vicar
from repro.arith.backends import (
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
)
from repro.data.dirichlet import HMMData, sample_hcg_like_hmm, sample_hmm
from repro.engine import ExecPlan
from repro.formats.posit import PositEnv

EXACT_FORMATS = ["binary64", "log-seq", "posit(64,18)", "lns"]


def _backend(fmt):
    if fmt == "binary64":
        return Binary64Backend()
    if fmt == "log-seq":
        return LogSpaceBackend(sum_mode="sequential")
    if fmt == "lns":
        return LNSBackend()
    return PositBackend(PositEnv(64, 18))


@pytest.fixture(params=EXACT_FORMATS)
def backend(request):
    return _backend(request.param)


def test_forward_models_batch_fig_configs(backend):
    """Per-model batched forward on the fig6/fig10 H values (scaled-down
    T), bit-for-bit against the scalar forward per instance."""
    config = VicarConfig(length=12, h_values=(13, 32), matrices_per_h=2,
                         bits_per_step=40.0, seed=0)
    instances = generate_instances(config)
    got = forward_models_batch(instances, backend)
    want = [forward(hmm, backend) for hmm in instances]
    assert got == want


def test_forward_models_batch_mixed_shapes(backend):
    """Groups with different (H, M, T) run separately and merge back in
    input order."""
    models = [sample_hmm(3, 4, 9, seed=1), sample_hmm(5, 4, 7, seed=2),
              sample_hmm(3, 4, 9, seed=3)]
    got = forward_models_batch(models, backend)
    want = [forward(m, backend) for m in models]
    assert got == want


def test_run_vicar_batch_identical(backend):
    config = VicarConfig(length=10, h_values=(5,), matrices_per_h=3,
                         bits_per_step=60.0, seed=1, oracle_prec=192)
    serial = run_vicar(config, {"fmt": backend}, plan=ExecPlan.serial())
    batched = run_vicar(config, {"fmt": backend})
    assert serial.scores == batched.scores
    assert serial.reference_scales == batched.reference_scales


def test_run_vicar_parallel_references_identical():
    backend = LogSpaceBackend(sum_mode="sequential")
    config = VicarConfig(length=10, h_values=(4,), matrices_per_h=4,
                         bits_per_step=50.0, seed=2, oracle_prec=192)
    serial = run_vicar(config, {"log": backend}, plan=ExecPlan.serial())
    fanned = run_vicar(config, {"log": backend}, plan=ExecPlan(n_workers=2))
    assert serial.scores == fanned.scores
    assert serial.reference_scales == fanned.reference_scales


def test_backward_batch_matches_scalar(backend):
    hmm = sample_hcg_like_hmm(4, 11, seed=5, bits_per_step=150.0)
    obs = np.array([hmm.observations, hmm.observations[::-1]])
    got = backward_batch(hmm, backend, obs)
    want = []
    for row in obs:
        clone = HMMData(hmm.transition, hmm.emission, hmm.initial,
                        tuple(int(o) for o in row))
        want.append(backward(clone, backend))
    assert got == want


def test_backward_equals_forward_likelihood_batched(backend):
    """Cross-validation invariant, preserved by the batched kernels."""
    hmm = sample_hmm(4, 5, 10, seed=6)
    obs = np.array([hmm.observations])
    f = forward_models_batch([hmm], backend)[0]
    b = backward_batch(hmm, backend, obs)[0]
    if isinstance(backend, Binary64Backend):
        assert b == pytest.approx(f, rel=1e-12)
    else:
        # Exact formats accumulate differently but stay within rounding;
        # compare through the exact value view.
        fb = backend.to_bigfloat(f)
        bb = backend.to_bigfloat(b)
        assert (fb.sub(bb, 128)).abs().to_float() <= \
            abs(fb.to_float()) * 1e-9 + 1e-300


def test_run_chains_matches_run_chain(backend):
    seeds = [0, 3, 8]
    got = run_chains(backend, len(seeds), steps=5, seeds=seeds)
    want = [run_chain(backend, None, 5, s) for s in seeds]
    for g, w in zip(got, want):
        assert (g.accepted, g.rejected, g.stuck) == \
            (w.accepted, w.rejected, w.stuck)
        assert g.samples == w.samples


def test_run_chains_scalar_fallback_is_default_path():
    """The serial plan must reproduce the batched decisions too (one code
    path cannot drift from the other)."""
    backend = _backend("posit(64,18)")
    batched = run_chains(backend, 2, steps=4, seeds=[1, 2])
    scalar = run_chains(backend, 2, steps=4, seeds=[1, 2],
                        plan=ExecPlan.serial())
    for g, w in zip(batched, scalar):
        assert (g.accepted, g.rejected, g.stuck, g.samples) == \
            (w.accepted, w.rejected, w.stuck, w.samples)


def test_run_chains_underflow_pathology_preserved():
    """binary64 chains stay stuck under deep underflow — batching must
    not launder the 0/0 pathology away."""
    results = run_chains(Binary64Backend(), 2, steps=4, seeds=[0, 1],
                         bits_per_step=400.0)
    for r in results:
        assert r.stuck == 4 and r.accepted == 0


def test_fig10_experiment_plans_identical():
    from repro.experiments import fig10_vicar_cdf
    serial = fig10_vicar_cdf.run("test", seed=2, plan=ExecPlan.serial())
    batched = fig10_vicar_cdf.run("test", seed=2, plan=ExecPlan(n_workers=2))
    for panel in serial.panels:
        # posit is element-exact through the engine; identical scores.
        assert serial.panels[panel].scores["posit(64,18)"] == \
            batched.panels[panel].scores["posit(64,18)"]
        assert serial.panels[panel].reference_scales == \
            batched.panels[panel].reference_scales
        # log runs in the default n-ary mode: ulp-close, not bitwise.
        s_med = serial.cdfs(panel)["log"].median
        b_med = batched.cdfs(panel)["log"].median
        assert b_med == pytest.approx(s_med, abs=1e-6)


def test_fig6_software_baseline_rows():
    from repro.experiments import fig6_forward_perf
    rows = fig6_forward_perf.run(plan=ExecPlan(measure=True))
    assert [r.h for r in rows] == [13, 32, 64, 128]
    for r in rows:
        assert r.sw_scalar_mmaps > 0 and r.sw_batch_mmaps > 0
    text = fig6_forward_perf.render(rows)
    assert "sw batch MMAPS" in text
