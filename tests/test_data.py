"""Tests for the synthetic workload generators."""

import math

import numpy as np
import pytest

from repro.bigfloat import BigFloat
from repro.apps import reference_pvalue
from repro.data import (
    CALL_THRESHOLD_SCALE,
    FIG9_BINS,
    column_for_target_scale,
    dataset_shape_stats,
    paper_like_datasets,
    phred_error_prob,
    sample_hcg_like_hmm,
    sample_hmm,
    sample_stochastic_matrix,
    stratified_columns,
    synth_column,
    synth_dataset,
)


class TestDirichlet:
    def test_stochastic_rows(self):
        rng = np.random.default_rng(0)
        m = sample_stochastic_matrix(rng, 5, 7)
        assert m.shape == (5, 7)
        assert np.allclose(m.sum(axis=1), 1.0)
        assert (m >= 0).all()

    def test_sample_hmm_shapes(self):
        hmm = sample_hmm(4, 6, 20, seed=1)
        assert hmm.n_states == 4
        assert hmm.n_symbols == 6
        assert hmm.length == 20
        a, b, pi, obs = hmm.as_float_arrays()
        assert np.allclose(a.sum(axis=1), 1.0)
        assert np.allclose(b.sum(axis=1), 1.0)
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
        assert obs.min() >= 0 and obs.max() < 6

    def test_deterministic_by_seed(self):
        h1 = sample_hmm(3, 4, 10, seed=9)
        h2 = sample_hmm(3, 4, 10, seed=9)
        assert h1.observations == h2.observations
        assert h1.transition == h2.transition

    def test_hcg_like_emission_magnitudes(self):
        hmm = sample_hcg_like_hmm(3, 10, seed=0, bits_per_step=200.0)
        for row in hmm.emission:
            for v in row:
                assert -212 <= v.scale <= -188

    def test_hcg_like_transitions_stochastic(self):
        hmm = sample_hcg_like_hmm(3, 10, seed=0)
        a, _, _, _ = hmm.as_float_arrays()
        assert np.allclose(a.sum(axis=1), 1.0)


class TestGenomeColumns:
    def test_phred(self):
        assert math.isclose(phred_error_prob(30.0), 1e-3)
        assert math.isclose(phred_error_prob(10.0), 0.1)

    def test_synth_column_shape(self):
        rng = np.random.default_rng(0)
        col = synth_column(rng, depth=50, k=3)
        assert col.depth == 50
        assert col.k == 3
        for p in col.success_probs:
            assert BigFloat.zero() < p < BigFloat.from_int(1)

    @pytest.mark.parametrize("target", [-300, -2_000, -20_000])
    def test_target_scale_landing(self, target):
        """Columns must land within ~15% of the requested p-value
        exponent (enough to stratify into Figure 9's wide bins)."""
        rng = np.random.default_rng(1)
        col = column_for_target_scale(rng, target)
        ref = reference_pvalue(col.success_probs, col.k)
        assert abs(ref.scale - target) <= max(80, abs(target) * 0.15)

    def test_target_scale_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            column_for_target_scale(rng, 10)

    def test_stratified_covers_bins(self):
        cols = stratified_columns(per_bin=1, seed=2,
                                  bins=((-1_022, -500), (-200, 1)))
        assert len(cols) == 2

    def test_dataset_fractions(self):
        ds = synth_dataset("T", 40, seed=3)
        assert len(ds.columns) == 40
        assert ds.total_ops > 0

    def test_paper_like_datasets(self):
        datasets = paper_like_datasets(n_datasets=3, columns_per_dataset=6, seed=0)
        assert [d.name for d in datasets] == ["D0", "D1", "D2"]
        stats = dataset_shape_stats(datasets)
        assert len(stats) == 3
        assert all(s["columns"] == 6 for s in stats)
        # Datasets must differ (diverse N, K as the paper notes).
        assert stats[0]["total_ops"] != stats[1]["total_ops"]

    def test_fig9_bins_cover_threshold(self):
        los = [b[0] for b in FIG9_BINS]
        his = [b[1] for b in FIG9_BINS]
        assert min(los) == -440_000
        assert max(his) == 1
        assert CALL_THRESHOLD_SCALE == -200
