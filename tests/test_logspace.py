"""Log-space (LSE) arithmetic tests, including the paper's stability
examples from Section II.B."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat
from repro.bigfloat import log as bf_log
from repro.formats import LogSpace, log_mul, lse2, lse2_naive, lse_n, lse_sequential


class TestLSE2:
    def test_equal_operands(self):
        # lse(l, l) = l + ln 2
        assert abs(lse2(-5.0, -5.0) - (-5.0 + math.log(2))) < 1e-15

    def test_matches_direct_in_safe_range(self):
        for lx, ly in ((-1.0, -2.0), (0.0, -30.0), (-100.0, -100.5)):
            direct = math.log(math.exp(lx) + math.exp(ly))
            assert abs(lse2(lx, ly) - direct) < 1e-12

    def test_paper_stability_example(self):
        """Section II.B: lx=-1000, ly=-999 — the naive form underflows,
        LSE computes the right answer."""
        got = lse2(-1000.0, -999.0)
        expected = -999.0 + math.log1p(math.exp(-1.0))
        assert abs(got - expected) < 1e-12
        assert lse2_naive(-1000.0, -999.0) == -math.inf

    def test_naive_overflow(self):
        assert lse2_naive(800.0, 800.0) == math.inf
        assert math.isfinite(lse2(800.0, 800.0))

    def test_zero_identity(self):
        assert lse2(-math.inf, -3.0) == -3.0
        assert lse2(-3.0, -math.inf) == -3.0
        assert lse2(-math.inf, -math.inf) == -math.inf

    def test_commutative(self):
        assert lse2(-4.2, -1.3) == lse2(-1.3, -4.2)


class TestLSEN:
    def test_empty(self):
        assert lse_n([]) == -math.inf

    def test_single(self):
        assert lse_n([-7.0]) == -7.0

    def test_uniform(self):
        # lse of n copies of l is l + ln n.
        vals = [-50.0] * 8
        assert abs(lse_n(vals) - (-50.0 + math.log(8))) < 1e-14

    def test_all_zero_probability(self):
        assert lse_n([-math.inf] * 4) == -math.inf

    def test_matches_sequential_closely(self):
        vals = [-10.0, -11.5, -9.2, -30.0, -10.1]
        assert abs(lse_n(vals) - lse_sequential(vals)) < 1e-12

    def test_wide_spread(self):
        # A dominant term: result ~ max.
        vals = [-5.0, -5000.0, -80000.0]
        assert abs(lse_n(vals) - (-5.0)) < 1e-12


class TestLogMul:
    def test_simple(self):
        assert log_mul(-3.0, -4.5) == -7.5

    def test_zero_absorbs(self):
        assert log_mul(-math.inf, -1.0) == -math.inf
        assert log_mul(-1.0, -math.inf) == -math.inf


class TestLogSpaceCodec:
    def test_encode_one(self):
        assert LogSpace().encode_float(1.0) == 0.0

    def test_encode_zero(self):
        assert LogSpace().encode_float(0.0) == -math.inf

    def test_encode_negative_raises(self):
        with pytest.raises(ValueError):
            LogSpace().encode_float(-0.5)

    def test_paper_intro_example(self):
        """ln(2**-2_900_000) ~ -2_010_126.824 (quoted in Section I)."""
        ls = LogSpace()
        lx = ls.encode_bigfloat(BigFloat.exp2(-2_900_000))
        assert abs(lx - (-2_010_126.824)) < 0.01

    def test_section2_example(self):
        """log(2**-120_000) ~ -83177.66 (Section II.B)."""
        lx = LogSpace().encode_bigfloat(BigFloat.exp2(-120_000))
        assert abs(lx - (-83177.66)) < 0.01

    def test_decode_roundtrip_extreme(self):
        ls = LogSpace()
        x = BigFloat.exp2(-500_000)
        back = ls.decode_bigfloat(ls.encode_bigfloat(x))
        # Error limited by binary64 rounding of the log value:
        # ulp(-346574) ~ 2**-34 absolute -> ~2**-34 relative after exp.
        from repro.bigfloat import relative_error
        assert relative_error(x, back).to_float() < 2 ** -30

    def test_decode_zero(self):
        assert LogSpace().decode_bigfloat(-math.inf).is_zero()

    def test_decode_rejects_nan(self):
        with pytest.raises(ValueError):
            LogSpace().decode_bigfloat(math.nan)

    def test_is_zero(self):
        ls = LogSpace()
        assert ls.is_zero(-math.inf)
        assert not ls.is_zero(-1e300)


@settings(max_examples=150, deadline=None)
@given(st.floats(min_value=-1e5, max_value=0.0),
       st.floats(min_value=-1e5, max_value=0.0))
def test_lse2_vs_bigfloat_oracle(lx, ly):
    """LSE in binary64 must agree with the exact computation to double
    precision (a few ulps of the result)."""
    got = lse2(lx, ly)
    ex = bf_log(BigFloat.coerce(0).add(_bexp(lx)).add(_bexp(ly)))
    expected = ex.to_float()
    assert abs(got - expected) <= 1e-11 * max(1.0, abs(expected))


def _bexp(v: float) -> BigFloat:
    from repro.bigfloat import exp as bf_exp
    return bf_exp(BigFloat.from_float(v))


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-1e6, max_value=-1e-3))
def test_lse2_exceeds_max(lx):
    """lse(a, b) >= max(a, b): adding probability mass never decreases."""
    assert lse2(lx, lx - 1.0) >= lx


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=-1e4, max_value=0.0), min_size=1, max_size=12))
def test_lse_n_vs_sequential(vals):
    a, b = lse_n(vals), lse_sequential(vals)
    assert abs(a - b) <= 1e-9 * max(1.0, abs(a))
