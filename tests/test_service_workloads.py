"""The workload-subsystem service handlers: ``viterbi``, ``pairhmm``,
and ``kalman`` as typed request kinds — validation, coalescing, and
scatter correctness against the underlying kernels."""

import numpy as np
import pytest

from repro.nd.context import _resolve_format
from repro.service.api import InvalidRequest, WorkloadRequest
from repro.service.workloads import (
    HANDLERS,
    KalmanHandler,
    PairhmmHandler,
    ViterbiHandler,
    encode_value,
    execute,
)
from repro.workloads import kalman_batch, pairhmm_batch, viterbi_batch

MODEL = {
    "transition": [[0.7, 0.3], [0.4, 0.6]],
    "emission": [[0.5, 0.4, 0.1], [0.1, 0.3, 0.6]],
    "initial": [0.6, 0.4],
    "observations": [0, 1, 2, 1, 0],
}


def _req(kind, payload, fmt="binary64"):
    return WorkloadRequest(kind=kind, format=fmt, payload=payload)


class TestRegistration:
    def test_kinds_served(self):
        assert {"viterbi", "pairhmm", "kalman"} <= set(HANDLERS)
        assert isinstance(HANDLERS["viterbi"], ViterbiHandler)
        assert isinstance(HANDLERS["pairhmm"], PairhmmHandler)
        assert isinstance(HANDLERS["kalman"], KalmanHandler)


class TestViterbiHandler:
    def test_execute_matches_kernel(self):
        backend = _resolve_format("log")
        seqs = [[0, 1, 2, 1], [2, 2, 0, 1]]
        result = execute(_req("viterbi",
                              {"model": MODEL, "sequences": seqs},
                              fmt="log"))
        from repro.service.workloads import _model_from_json
        hmm = _model_from_json(MODEL, where="model")
        want = viterbi_batch(hmm, backend, seqs)
        assert result.values == [
            {"score": encode_value(backend, d.score), "path": d.states()}
            for d in want]
        assert result.stats["sequences"] == 2

    def test_sequences_default_to_model_observations(self):
        result = execute(_req("viterbi", {"model": MODEL}))
        assert len(result.values) == 1
        assert len(result.values[0]["path"]) == len(MODEL["observations"])

    def test_coalesce_same_model_and_length(self):
        h = HANDLERS["viterbi"]
        r1 = _req("viterbi", {"model": MODEL, "sequences": [[0, 1]]})
        r2 = _req("viterbi", {"model": MODEL, "sequences": [[2, 0], [1, 1]]})
        h.validate(r1), h.validate(r2)
        assert h.coalesce_key(r1) == h.coalesce_key(r2)
        r3 = _req("viterbi", {"model": MODEL, "sequences": [[0, 1, 2]]})
        h.validate(r3)
        assert h.coalesce_key(r1) != h.coalesce_key(r3)

    def test_coalesced_scatter_matches_solo(self):
        h = HANDLERS["viterbi"]
        r1 = _req("viterbi", {"model": MODEL, "sequences": [[0, 1, 2]]})
        r2 = _req("viterbi", {"model": MODEL, "sequences": [[2, 2, 0],
                                                            [1, 0, 1]]})
        h.validate(r1), h.validate(r2)
        merged = h.run_batch([r1, r2])
        assert [m[1]["sequences"] for m in merged] == [1, 2]
        assert merged[0][0] == execute(r1).values
        assert merged[1][0] == execute(r2).values

    @pytest.mark.parametrize("payload", [
        {"sequences": [[0, 1]]},                       # no model
        {"model": MODEL, "sequences": []},             # empty
        {"model": MODEL, "sequences": [[0], [0, 1]]},  # ragged
        {"model": MODEL, "sequences": [[0, 3]]},       # symbol too big
        {"model": MODEL, "sequences": [[0, -1]]},      # negative
        {"model": MODEL, "extra": 1},                  # unknown field
    ])
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(InvalidRequest):
            execute(_req("viterbi", payload))


class TestPairhmmHandler:
    PAYLOAD = {"haplotype": [0, 1, 2, 3, 0, 1],
               "reads": [[0, 1, 2], [3, 3, 3]]}

    def test_execute_matches_kernel(self):
        backend = _resolve_format("binary64")
        result = execute(_req("pairhmm", dict(self.PAYLOAD)))
        want = pairhmm_batch(self.PAYLOAD["haplotype"],
                             self.PAYLOAD["reads"], backend)
        assert result.values == [encode_value(backend, v) for v in want]
        assert result.stats["reads"] == 2

    def test_semiring_and_params_respected(self):
        backend = _resolve_format("binary64")
        payload = dict(self.PAYLOAD, semiring="sum-product",
                       gap_open=0.05, mismatch=0.02)
        result = execute(_req("pairhmm", payload))
        from repro.workloads import PairHMMParams
        want = pairhmm_batch(self.PAYLOAD["haplotype"],
                             self.PAYLOAD["reads"], backend,
                             params=PairHMMParams(gap_open=0.05,
                                                  mismatch=0.02),
                             semiring="sum-product")
        assert result.values == [encode_value(backend, v) for v in want]

    def test_coalesce_key_covers_params(self):
        h = HANDLERS["pairhmm"]
        r1 = _req("pairhmm", dict(self.PAYLOAD))
        r2 = _req("pairhmm", dict(self.PAYLOAD, reads=[[1, 1, 1]]))
        r3 = _req("pairhmm", dict(self.PAYLOAD, gap_open=0.2))
        for r in (r1, r2, r3):
            h.validate(r)
        assert h.coalesce_key(r1) == h.coalesce_key(r2)
        assert h.coalesce_key(r1) != h.coalesce_key(r3)

    @pytest.mark.parametrize("payload", [
        {"reads": [[0]]},                                    # no haplotype
        {"haplotype": [], "reads": [[0]]},                   # empty hap
        {"haplotype": [0, 1], "reads": []},                  # no reads
        {"haplotype": [0, 1], "reads": [[0], [0, 1]]},       # ragged
        {"haplotype": [0, 1], "reads": [[0]], "gap_open": 0.9},
        {"haplotype": [0, 1], "reads": [[0]], "semiring": "nope"},
        {"haplotype": [0, 1], "reads": [[0]], "extra": 1},
    ])
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(InvalidRequest):
            execute(_req("pairhmm", payload))


class TestKalmanHandler:
    PAYLOAD = {"tracks": [[0.5, 0.6, 0.4], [1.0, 1.1, 0.9]]}

    def test_execute_matches_kernel(self):
        backend = _resolve_format("binary64")
        result = execute(_req("kalman", dict(self.PAYLOAD)))
        want = kalman_batch(self.PAYLOAD["tracks"], backend)
        assert result.values == [
            {"x": encode_value(backend, e.x),
             "p": encode_value(backend, e.p)} for e in want]
        assert result.stats["tracks"] == 2

    def test_constants_respected(self):
        backend = _resolve_format("binary64")
        payload = dict(self.PAYLOAD, a=0.8, r=1e-4)
        result = execute(_req("kalman", payload))
        from repro.workloads import KalmanParams
        want = kalman_batch(self.PAYLOAD["tracks"], backend,
                            params=KalmanParams(a=0.8, r=1e-4))
        assert result.values[0]["x"] == encode_value(backend, want[0].x)

    def test_coalesce_key_covers_constants(self):
        h = HANDLERS["kalman"]
        r1 = _req("kalman", dict(self.PAYLOAD))
        r2 = _req("kalman", {"tracks": [[2.0, 3.0, 4.0]]})
        r3 = _req("kalman", dict(self.PAYLOAD, r=1e-4))
        for r in (r1, r2, r3):
            h.validate(r)
        assert h.coalesce_key(r1) == h.coalesce_key(r2)
        assert h.coalesce_key(r1) != h.coalesce_key(r3)

    def test_coalesced_scatter_matches_solo(self):
        h = HANDLERS["kalman"]
        r1 = _req("kalman", {"tracks": [[0.5, 0.6]]})
        r2 = _req("kalman", {"tracks": [[1.5, 1.6], [2.5, 2.6]]})
        h.validate(r1), h.validate(r2)
        merged = h.run_batch([r1, r2])
        assert merged[0][0] == execute(r1).values
        assert merged[1][0] == execute(r2).values

    @pytest.mark.parametrize("payload", [
        {},                                        # no tracks
        {"tracks": []},                            # empty
        {"tracks": [[0.5], [0.5, 0.6]]},           # ragged
        {"tracks": [[0.0]]},                       # non-positive
        {"tracks": [[0.5]], "a": 2.0},             # a out of range
        {"tracks": [[0.5]], "r": -1.0},            # negative constant
        {"tracks": [[0.5]], "extra": 1},           # unknown field
    ])
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(InvalidRequest):
            execute(_req("kalman", payload))


class TestExoticFormats:
    @pytest.mark.parametrize("fmt", ("log", "posit(64,9)", "lns(12,50)"))
    def test_all_kinds_serve_every_format(self, fmt):
        for kind, payload in (
                ("viterbi", {"model": MODEL, "sequences": [[0, 1, 2]]}),
                ("pairhmm", {"haplotype": [0, 1, 2], "reads": [[0, 1]]}),
                ("kalman", {"tracks": [[0.5, 0.6]]})):
            result = execute(_req(kind, payload, fmt=fmt))
            assert len(result.values) == 1, (kind, fmt)
