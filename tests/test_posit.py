"""Posit codec and arithmetic tests, including the paper's worked example
and Table I golden values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat
from repro.formats import FLUSH, NAR, PositEnv, Real, SATURATE, ZERO, paper_configs


class TestPaperExample:
    """Section III's posit(8,2) walkthrough: 0_0001_10_1 = 1.5 * 2**-10."""

    def test_decode(self):
        env = PositEnv(8, 2)
        value = env.decode(0b0_0001_10_1)
        assert isinstance(value, Real)
        assert value.to_float() == 1.5 * 2 ** -10

    def test_field_layout(self):
        env = PositEnv(8, 2)
        layout = env.field_layout(0b0_0001_10_1)
        assert layout["sign"] == "0"
        assert layout["regime"] == "0001"
        assert layout["exponent"] == "10"
        assert layout["fraction"] == "1"

    def test_encode_roundtrip(self):
        env = PositEnv(8, 2)
        assert env.encode_real(Real.from_float(1.5 * 2 ** -10)) == 0b0_0001_10_1

    def test_es_changes_decoded_value(self):
        # The paper notes the same bit pattern decodes differently when
        # ES changes.
        v2 = PositEnv(8, 2).decode(0b0_0001_10_1).to_float()
        v1 = PositEnv(8, 1).decode(0b0_0001_10_1).to_float()
        assert v2 != v1


class TestTableI:
    """Table I: useed, smallest positive, and max fraction bits."""

    CASES = {  # es: (useed_log2, smallest_scale, max_frac)
        6: (64, -3_968, 55),
        9: (512, -31_744, 52),
        12: (4_096, -253_952, 49),
        15: (32_768, -2_031_616, 46),
        18: (262_144, -16_252_928, 43),
        21: (2_097_152, -130_023_424, 40),
    }

    @pytest.mark.parametrize("es", sorted(CASES))
    def test_useed(self, es):
        assert PositEnv(64, es).useed_log2 == self.CASES[es][0]

    @pytest.mark.parametrize("es", sorted(CASES))
    def test_smallest_positive(self, es):
        env = PositEnv(64, es)
        assert env.min_scale == self.CASES[es][1]
        minpos = env.decode(env.minpos)
        assert minpos.scale == self.CASES[es][1]
        assert minpos.mantissa == 1

    @pytest.mark.parametrize("es", sorted(CASES))
    def test_max_fraction_bits(self, es):
        assert PositEnv(64, es).max_fraction_bits() == self.CASES[es][2]


class TestBitBudget:
    """Section III's regime-length examples: encoding 2**-2048 leaves 24
    fraction bits in posit(64,6) but 49 in posit(64,9)."""

    def test_posit64_6_at_minus_2048(self):
        assert PositEnv(64, 6).fraction_bits_at_scale(-2048) == 24

    def test_posit64_9_at_minus_2048(self):
        assert PositEnv(64, 9).fraction_bits_at_scale(-2048) == 49

    def test_regime_lengths(self):
        assert PositEnv(64, 6).regime_length_at_scale(-2048) == 33
        assert PositEnv(64, 9).regime_length_at_scale(-2048) == 5

    def test_out_of_range_scale_raises(self):
        with pytest.raises(ValueError):
            PositEnv(64, 9).fraction_bits_at_scale(-40_000)

    def test_shortest_regime_budget(self):
        env = PositEnv(64, 9)
        assert env.fraction_bits_at_scale(-1) == env.max_fraction_bits()


class TestSpecials:
    def test_zero(self):
        env = PositEnv(64, 9)
        assert env.decode(0) is ZERO
        assert env.encode_real(Real.zero()) == 0

    def test_nar(self):
        env = PositEnv(16, 1)
        assert env.decode(env.nar) is NAR
        with pytest.raises(ValueError):
            env.to_bigfloat(env.nar)

    def test_nar_propagates(self):
        env = PositEnv(16, 1)
        one = env.from_float(1.0)
        assert env.add(env.nar, one) == env.nar
        assert env.mul(one, env.nar) == env.nar
        assert env.sub(env.nar, env.nar) == env.nar

    def test_single_zero(self):
        env = PositEnv(16, 1)
        assert env.from_float(-0.0) == 0

    def test_nan_inf_map_to_nar(self):
        env = PositEnv(16, 1)
        assert env.from_float(float("nan")) == env.nar
        assert env.from_float(float("inf")) == env.nar

    def test_div_by_zero_is_nar(self):
        env = PositEnv(16, 1)
        assert env.div(env.from_float(1.0), 0) == env.nar


class TestSaturationAndUnderflow:
    def test_overflow_clamps_to_maxpos(self):
        env = PositEnv(16, 1)
        assert env.encode_bigfloat(BigFloat.exp2(10**6)) == env.maxpos

    def test_standard_never_underflows(self):
        env = PositEnv(16, 1, underflow=SATURATE)
        assert env.encode_bigfloat(BigFloat.exp2(-10**6)) == env.minpos

    def test_flush_mode_underflows(self):
        env = PositEnv(16, 1, underflow=FLUSH)
        assert env.encode_bigfloat(BigFloat.exp2(-10**6)) == 0

    def test_just_below_minpos_rounds_to_minpos_in_both_modes(self):
        # Pattern rounding keeps near-minpos values at minpos even in
        # flush mode; only deep underflow hits zero.
        for mode in (SATURATE, FLUSH):
            env = PositEnv(16, 1, underflow=mode)
            x = BigFloat.exp2(env.min_scale - 1)
            assert env.encode_bigfloat(x) == env.minpos

    def test_negative_saturation(self):
        env = PositEnv(16, 1)
        bits = env.encode_bigfloat(BigFloat.exp2(10**6).neg())
        assert bits == env.neg(env.maxpos)

    def test_paper_underflow_example(self):
        # LoFreq's smallest observed p-value 2**-434916 underflows
        # posit(64,9) and posit(64,12) but not posit(64,18).
        p = BigFloat.exp2(-434_916)
        assert PositEnv(64, 9, FLUSH).encode_bigfloat(p) == 0
        assert PositEnv(64, 12, FLUSH).encode_bigfloat(p) == 0
        env18 = PositEnv(64, 18, FLUSH)
        bits = env18.encode_bigfloat(p)
        assert bits != 0
        assert env18.to_bigfloat(bits).scale == -434_916


class TestRoundtripExhaustive:
    @pytest.mark.parametrize("nbits,es", [(8, 2), (8, 0), (8, 1), (10, 2)])
    def test_decode_encode_identity(self, nbits, es):
        """Every representable pattern decodes to a value that encodes
        back to the same pattern (codec consistency, exhaustively)."""
        env = PositEnv(nbits, es)
        for bits in range(1 << nbits):
            decoded = env.decode(bits)
            if decoded is ZERO:
                assert bits == 0
                continue
            if decoded is NAR:
                assert bits == env.nar
                continue
            assert env.encode_real(decoded) == bits, f"pattern {bits:#x}"

    def test_monotone_value_order(self):
        """Posit encodings order like two's-complement integers."""
        env = PositEnv(8, 1)
        reals = []
        for bits in range(1 << 8):
            d = env.decode(bits)
            if isinstance(d, Real):
                reals.append((env._signed(bits), d.to_bigfloat()))
        reals.sort(key=lambda t: t[0])
        for (_, lo), (_, hi) in zip(reals, reals[1:]):
            assert lo < hi


class TestCorrectRounding:
    @pytest.mark.parametrize("nbits,es", [(8, 1), (8, 2)])
    def test_encode_lands_on_a_neighbor(self, nbits, es):
        """encode(x) must land on one of the two posits bracketing x."""
        env = PositEnv(nbits, es)
        import random
        rng = random.Random(7)
        for _ in range(400):
            scale = rng.randint(env.min_scale - 4, env.max_scale + 4)
            mant = rng.randrange(1, 1 << 12) | 1
            x = Real(rng.randint(0, 1), mant, scale - mant.bit_length() + 1)
            bits = env.encode_real(x)
            got = env.decode(bits)
            assert isinstance(got, Real)
            # Compare against the patterns one step away in signed order.
            xbf = x.to_bigfloat()
            gbf = got.to_bigfloat()
            if gbf == xbf:
                continue
            step = 1 if gbf < xbf else -1
            nxt = (bits + step) & env.mask
            nd = env.decode(nxt)
            if nd in (ZERO, NAR):
                continue  # clamped at the end of the range
            # x must lie between decode(bits) and decode(next).
            nbf = nd.to_bigfloat()
            lo, hi = (gbf, nbf) if gbf < nbf else (nbf, gbf)
            assert lo <= xbf <= hi

    def test_exactly_representable_is_identity(self):
        env = PositEnv(16, 1)
        for v in (1.0, -1.0, 0.5, 1.5, 2.0, -0.75, 4096.0):
            bits = env.from_float(v)
            assert env.to_float(bits) == v


class TestArithmetic:
    def test_add_simple(self):
        env = PositEnv(32, 2)
        a, b = env.from_float(1.25), env.from_float(2.5)
        assert env.to_float(env.add(a, b)) == 3.75

    def test_add_zero_identity(self):
        env = PositEnv(16, 1)
        a = env.from_float(0.3)
        assert env.add(a, 0) == a
        assert env.add(0, a) == a

    def test_sub_self_is_zero(self):
        env = PositEnv(16, 1)
        a = env.from_float(0.3)
        assert env.sub(a, a) == 0

    def test_mul_simple(self):
        env = PositEnv(32, 2)
        a, b = env.from_float(3.0), env.from_float(-0.5)
        assert env.to_float(env.mul(a, b)) == -1.5

    def test_mul_by_one(self):
        env = PositEnv(16, 1)
        one = env.from_float(1.0)
        for v in (0.3, -7.25, 1e-4):
            a = env.from_float(v)
            assert env.mul(a, one) == a

    def test_div_inverse_of_mul(self):
        env = PositEnv(32, 2)
        a, b = env.from_float(3.0), env.from_float(8.0)
        prod = env.mul(a, b)
        assert env.div(prod, b) == a

    def test_neg_abs(self):
        env = PositEnv(16, 1)
        a = env.from_float(-2.5)
        assert env.to_float(env.neg(a)) == 2.5
        assert env.to_float(env.abs(a)) == 2.5
        assert env.abs(env.neg(a)) == env.abs(a)

    def test_cmp(self):
        env = PositEnv(16, 1)
        assert env.cmp(env.from_float(1.0), env.from_float(2.0)) == -1
        assert env.cmp(env.from_float(-1.0), env.from_float(1.0)) == -1
        assert env.cmp(env.from_float(0.5), env.from_float(0.5)) == 0

    def test_fused_sum_matches_exact(self):
        env = PositEnv(16, 1)
        terms = [env.from_float(v) for v in (0.1, 0.2, 0.3, 1e-5)]
        exact = Real.zero()
        for t in terms:
            exact = exact.add(env.decode(t))
        assert env.fused_sum(terms) == env.encode_real(exact)

    def test_fused_sum_beats_sequential(self):
        """The quire avoids per-add rounding; construct a case where the
        sequential sum differs."""
        env = PositEnv(8, 0)
        big = env.from_float(64.0)
        tiny = env.from_float(0.25)
        seq = env.add(env.add(big, tiny), tiny)
        fused = env.fused_sum([big, tiny, tiny])
        seq_v = env.to_float(seq)
        fused_v = env.to_float(fused)
        exact = 64.5
        assert abs(fused_v - exact) <= abs(seq_v - exact)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_add_commutes(a, b):
    env = PositEnv(16, 1)
    assert env.add(a, b) == env.add(b, a)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_mul_commutes(a, b):
    env = PositEnv(16, 1)
    assert env.mul(a, b) == env.mul(b, a)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_neg_distributes_over_add(a, b):
    """Posit negation is exact (two's complement), so
    -(a+b) == (-a)+(-b) must hold bit-for-bit."""
    env = PositEnv(16, 1)
    assert env.neg(env.add(a, b)) == env.add(env.neg(a), env.neg(b))


@settings(max_examples=200, deadline=None)
@given(st.integers(0, (1 << 16) - 1))
def test_double_negation(a):
    env = PositEnv(16, 1)
    assert env.neg(env.neg(a)) == a & env.mask


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=1e-150, max_value=1e150))
def test_posit64_9_float_roundtrip(v):
    """posit(64,9) offers the full 52 fraction bits for scales in
    [-512, 512) (regime length 2), so every double in that band must
    round-trip exactly — this is the paper's 'matches binary64 precision'
    claim for posit(64,9)."""
    env = PositEnv(64, 9)
    assert env.to_float(env.from_float(v)) == v
    assert env.to_float(env.from_float(-v)) == -v


@settings(max_examples=100, deadline=None)
@given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
def test_cmp_matches_value_order(a, b):
    env = PositEnv(16, 1)
    da, db = env.decode(a), env.decode(b)
    if da is NAR or db is NAR:
        return
    va = BigFloat.zero() if da is ZERO else da.to_bigfloat()
    vb = BigFloat.zero() if db is ZERO else db.to_bigfloat()
    assert env.cmp(a, b) == va.cmp(vb)


@settings(max_examples=150, deadline=None)
@given(st.integers(1, (1 << 15) - 1), st.integers(1, (1 << 15) - 1))
def test_div_correctly_rounded(a, b):
    """Division lands on one of the two posits bracketing the exact
    quotient (positive operands; NaR-free by construction)."""
    env = PositEnv(16, 1)
    q_bits = env.div(a, b)
    if env.is_nar(q_bits) or env.is_zero(q_bits):
        return
    got = env.to_bigfloat(q_bits)
    exact = env.to_bigfloat(a).div(env.to_bigfloat(b), 128)
    if got == exact:
        return
    step = 1 if got < exact else -1
    neighbor = env.decode((q_bits + step) & env.mask)
    if neighbor in (ZERO, NAR):
        return  # clamped at the range edge
    nbf = neighbor.to_bigfloat()
    lo, hi = (got, nbf) if got < nbf else (nbf, got)
    assert lo <= exact <= hi


@settings(max_examples=100, deadline=None)
@given(st.integers(1, (1 << 15) - 1))
def test_div_by_one_identity(a):
    env = PositEnv(16, 1)
    one = env.from_float(1.0)
    assert env.div(a, one) == a


def test_paper_configs_factory():
    cfgs = paper_configs()
    assert set(cfgs) == {"posit(64,9)", "posit(64,12)", "posit(64,18)"}
    assert all(env.nbits == 64 for env in cfgs.values())
    assert cfgs["posit(64,9)"].name == "posit(64,9)"
