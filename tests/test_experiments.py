"""End-to-end tests for the experiment modules (test scale) and runner."""

import pytest

from repro.experiments import (
    fig1_alpha_exponent,
    fig3_op_accuracy,
    fig6_forward_perf,
    fig7_column_perf,
    fig8_mmaps_per_clb,
    fig9_pvalue_accuracy,
    fig10_vicar_cdf,
    fig11_lofreq_cdf,
    table1_range,
    table2_units,
    table3_forward_resources,
    table4_column_resources,
)
from repro.experiments.runner import REGISTRY, main, run_experiment


class TestFig1:
    def test_run_and_render(self):
        result = fig1_alpha_exponent.run("test")
        assert result.slope_bits_per_iter < -4.0
        assert 0 < result.underflow_iteration < len(result.scales)
        text = fig1_alpha_exponent.render(result)
        assert "Figure 1" in text and "underflow" in text


class TestTable1:
    def test_run_and_render(self):
        rows = table1_range.run()
        text = table1_range.render(rows)
        assert "2^-31744" in text  # posit(64,9) minpos from the paper
        assert "binary64" in text


class TestFig3:
    def test_run_and_render(self):
        result = fig3_op_accuracy.run("test", seed=3)
        text = fig3_op_accuracy.render(result)
        assert "Figure 3(a)" in text and "Figure 3(b)" in text
        # binary64 must be absent (rendered '-') in the deepest bin.
        add_rows = fig3_op_accuracy._panel_rows(result.add)
        assert add_rows[0]["binary64"] is None
        assert add_rows[-1]["binary64"] is not None


class TestTable2:
    def test_run_and_render(self):
        result = table2_units.run()
        assert len(result["rows"]) == 8
        text = table2_units.render(result)
        assert "LogiCORE" not in text  # names come from our DB
        assert "Table II" in text


class TestHardwareFigures:
    def test_fig6(self):
        rows = fig6_forward_perf.run()
        assert [r.h for r in rows] == [13, 32, 64, 128]
        for r in rows:
            assert r.posit_seconds < r.log_seconds
            assert r.improvement_pct == pytest.approx(
                r.paper_improvement_pct, abs=8.0)
        assert "Figure 6" in fig6_forward_perf.render(rows)

    def test_fig7(self):
        rows = fig7_column_perf.run(n_datasets=4)
        assert len(rows) == 4
        assert all(0.0 < r.improvement_pct < 35.0 for r in rows)
        assert "Figure 7" in fig7_column_perf.render(rows)

    def test_fig8(self):
        rows = fig8_mmaps_per_clb.run(n_datasets=4)
        for r in rows:
            assert 1.6 < r.ratio < 2.6
        assert "MMAPS" in fig8_mmaps_per_clb.render(rows)

    def test_table3(self):
        rows = table3_forward_resources.run()
        assert len(rows) == 8
        reductions = table3_forward_resources.reduction_rows(rows)
        for row in reductions:
            assert 55.0 < row["LUT reduction %"] < 67.0
        assert "Table III" in table3_forward_resources.render(rows)

    def test_table4(self):
        result = table4_column_resources.run()
        assert len(result["rows"]) == 2
        assert result["floorplan"]["log_per_slr"].units_per_slr == 4
        text = table4_column_resources.render(result)
        assert "Table IV" in text and "SLR" in text


class TestAccuracyFigures:
    def test_fig9(self):
        result = fig9_pvalue_accuracy.run("test", seed=1)
        rows = result.median_rows()
        assert len(rows) == len(fig9_pvalue_accuracy.FIG9_BINS) \
            if hasattr(fig9_pvalue_accuracy, "FIG9_BINS") else len(rows) == 8
        # posit(64,9) must be absent (underflowed away) in the deepest bin.
        assert rows[0]["posit(64,9)"] is None
        assert rows[0]["posit(64,18)"] is not None
        text = fig9_pvalue_accuracy.render(result)
        assert "Figure 9" in text

    def test_fig10(self):
        result = fig10_vicar_cdf.run("test", seed=2)
        for panel in ("T=100k", "T=500k"):
            cdfs = result.cdfs(panel)
            assert cdfs["posit(64,18)"].median < cdfs["log"].median
        text = fig10_vicar_cdf.render(result)
        assert "orders of magnitude" in text

    def test_fig11(self):
        result = fig11_lofreq_cdf.run("test", seed=4)
        crit = result.cdfs(critical=True)
        assert set(crit) == {"log", "posit(64,9)", "posit(64,12)",
                             "posit(64,18)"}
        text = fig11_lofreq_cdf.render(result)
        assert "critical" in text


class TestRunner:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        """The CLI caches results under .repro-cache by default; keep
        test runs from writing into the working tree."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_registry_complete(self):
        assert set(REGISTRY) == {
            "fig1", "table1", "fig3", "table2", "fig6", "fig7", "fig8",
            "table3", "table4", "fig9", "fig10", "fig11", "bitbudget",
            "scorecard", "viterbi", "pairhmm", "kalman"}

    def test_scorecard_all_claims_hold(self):
        from repro.experiments import scorecard
        claims = scorecard.run()
        assert len(claims) == 9
        failing = [c.claim_id for c in claims if not c.holds]
        assert not failing, failing
        text = scorecard.render(claims)
        assert "9/9 headline claims reproduce" in text

    def test_bitbudget_experiment(self):
        from repro.experiments import bitbudget_curves
        result = bitbudget_curves.run()
        rows = result.rows()
        assert rows[0]["value magnitude"] == "2^-10000"
        assert rows[0]["binary64"] is None  # underflowed
        assert rows[-1]["binary64"] == 52.0
        text = bitbudget_curves.render(result)
        assert "bit-budget" in text or "fraction bits" in text

    def test_out_dir_persists_json(self, tmp_path):
        from repro.experiments.io import load_report
        text = run_experiment("table1", out_dir=str(tmp_path))
        assert "Table I" in text
        loaded = load_report(str(tmp_path), "table1")
        assert loaded["experiment"] == "table1"
        assert loaded["result"]
        assert (tmp_path / "table1.txt").read_text().startswith("Table I")

    def test_run_experiment_api(self):
        text = run_experiment("table1")
        assert "Table I" in text

    def test_cli_list(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out

    def test_cli_single(self, capsys):
        assert main(["table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_cli_unknown(self):
        assert main(["fig99"]) == 2
