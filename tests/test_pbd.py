"""Poisson-binomial tests: closed-form checks, scipy cross-validation,
fast-path equivalence, and deep-tail behaviour per format."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.arith import (
    BigFloatBackend,
    Binary64Backend,
    LogSpaceBackend,
    PositBackend,
)
from repro.apps import (
    complement,
    pbd_pmf,
    pbd_pvalue,
    pbd_pvalue_float,
    pbd_pvalue_log,
    reference_pvalue,
)
from repro.bigfloat import BigFloat, relative_error
from repro.formats import PositEnv


def bf_probs(values):
    return [BigFloat.from_float(v) for v in values]


class TestPMF:
    def test_uniform_probs_match_binomial(self):
        """With identical p the PBD is a plain binomial."""
        n, p = 12, 0.3
        pmf = pbd_pmf(bf_probs([p] * n), n, Binary64Backend())
        for k in range(n + 1):
            expected = stats.binom.pmf(k, n, p)
            assert math.isclose(pmf[k], expected, rel_tol=1e-10), k

    def test_pmf_sums_to_one(self):
        probs = [0.1, 0.5, 0.9, 0.25]
        pmf = pbd_pmf(bf_probs(probs), 4, BigFloatBackend())
        total = BigFloat.zero()
        for v in pmf:
            total = total.add(v)
        assert relative_error(BigFloat.from_int(1), total).to_float() < 1e-60

    def test_two_trials_closed_form(self):
        p1, p2 = 0.2, 0.7
        pmf = pbd_pmf(bf_probs([p1, p2]), 2, Binary64Backend())
        assert math.isclose(pmf[0], (1 - p1) * (1 - p2), rel_tol=1e-14)
        assert math.isclose(pmf[1], p1 * (1 - p2) + p2 * (1 - p1), rel_tol=1e-14)
        assert math.isclose(pmf[2], p1 * p2, rel_tol=1e-14)


class TestPValue:
    def test_binomial_survival_function(self):
        """P(X >= k) must equal scipy's binomial survival function."""
        n, p, k = 20, 0.2, 5
        got = pbd_pvalue(bf_probs([p] * n), k, Binary64Backend())
        expected = stats.binom.sf(k - 1, n, p)
        assert math.isclose(got, expected, rel_tol=1e-10)

    @pytest.mark.parametrize("k", [1, 2, 7])
    def test_heterogeneous_vs_monte_carlo_free_oracle(self, k):
        """Cross-check the recurrence against direct enumeration."""
        probs = [0.05, 0.3, 0.5, 0.12, 0.41, 0.09, 0.77]
        got = pbd_pvalue(bf_probs(probs), k, BigFloatBackend()).to_float()
        # Enumerate all outcomes.
        import itertools
        total = 0.0
        for bits in itertools.product((0, 1), repeat=len(probs)):
            if sum(bits) >= k:
                prob = 1.0
                for b, p in zip(bits, probs):
                    prob *= p if b else (1 - p)
                total += prob
        assert math.isclose(got, total, rel_tol=1e-12)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            pbd_pvalue(bf_probs([0.5]), 0, Binary64Backend())
        with pytest.raises(ValueError):
            pbd_pvalue(bf_probs([0.5]), 2, Binary64Backend())

    def test_certain_successes(self):
        """All p=1 with k=N gives p-value 1."""
        got = pbd_pvalue(bf_probs([1.0] * 5), 5, BigFloatBackend())
        assert got == BigFloat.from_int(1)

    def test_pvalue_decreases_with_k(self):
        probs = bf_probs([0.3] * 15)
        backend = BigFloatBackend()
        values = [pbd_pvalue(probs, k, backend) for k in (2, 5, 9)]
        assert values[0] > values[1] > values[2]


class TestFastPaths:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_float_fast_path_matches_generic(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.uniform(0.001, 0.2, size=30)
        k = 4
        generic = pbd_pvalue(bf_probs(list(probs)), k, Binary64Backend())
        fast = pbd_pvalue_float(probs, k)
        assert math.isclose(generic, fast, rel_tol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_log_fast_path_matches_generic(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.uniform(0.001, 0.2, size=30)
        k = 4
        generic = pbd_pvalue(bf_probs(list(probs)), k, LogSpaceBackend())
        fast = pbd_pvalue_log(probs, k)
        assert math.isclose(generic, fast, rel_tol=1e-9)

    def test_deep_tail_float_underflow_log_survives(self):
        probs = np.full(40, 1e-30)
        k = 30
        assert pbd_pvalue_float(probs, k) == 0.0
        ll = pbd_pvalue_log(probs, k)
        assert math.isfinite(ll)
        assert ll < -2000


class TestDeepTails:
    def test_reference_reaches_extreme_scale(self):
        """The oracle must reach p-values far below binary64's range."""
        probs = [BigFloat.exp2(-120)] * 40
        ref = reference_pvalue(probs, 30)
        assert ref.scale < -3000

    def test_posit18_tracks_reference(self):
        probs = [BigFloat.exp2(-120)] * 30
        backend = PositBackend(PositEnv(64, 18))
        ref = reference_pvalue(probs, 20)
        got = backend.to_bigfloat(pbd_pvalue(probs, 20, backend))
        assert relative_error(ref, got).to_float() < 1e-9

    def test_posit9_flush_underflows_deep(self):
        probs = [BigFloat.exp2(-2_000)] * 24
        backend = PositBackend(PositEnv(64, 9, underflow="flush"))
        got = pbd_pvalue(probs, 20, backend)
        assert backend.is_zero(got)

    def test_complement_exact(self):
        p = BigFloat.from_float(0.125)
        assert complement(p) == BigFloat.from_float(0.875)

    def test_complement_validates_domain(self):
        with pytest.raises(ValueError):
            complement(BigFloat.from_float(1.5))
        with pytest.raises(ValueError):
            complement(BigFloat.from_float(-0.1))

    def test_complement_boundaries(self):
        assert complement(BigFloat.zero()) == BigFloat.from_int(1)
        assert complement(BigFloat.from_int(1)).is_zero()
