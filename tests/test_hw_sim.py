"""Tests for the discrete-event pipeline simulator: agreement with the
analytic closed form, and prefetch-bound behaviour."""

import pytest

from repro.hw import LOG, POSIT, ColumnUnit, ForwardUnit, column_timing
from repro.hw.sim import (
    SimConfig,
    prefetch_sensitivity,
    simulate,
    simulate_column,
    simulate_forward_unit,
)


class TestSimVsClosedForm:
    @pytest.mark.parametrize("style", [LOG, POSIT])
    @pytest.mark.parametrize("h", [13, 32, 64, 128])
    def test_forward_unit_matches_analytic(self, style, h):
        """With a fast prefetcher, the cycle-by-cycle simulation must
        reproduce the Fig. 5 closed form exactly."""
        t = 50
        sim = simulate_forward_unit(style, h, t, prefetch_latency=1)
        analytic = ForwardUnit(style, h).timing(t)
        assert sim.total_cycles == analytic.total_cycles
        assert sim.prefetch_stall_cycles == 0

    @pytest.mark.parametrize("style", [LOG, POSIT])
    @pytest.mark.parametrize("k,n", [(16, 30), (100, 25), (9, 10)])
    def test_column_matches_analytic(self, style, k, n):
        sim = simulate_column(style, k, n, prefetch_latency=1)
        analytic = column_timing(k, n, ColumnUnit(style).pe_latency, 8)
        assert sim.total_cycles == analytic.total_cycles

    def test_per_outer_records(self):
        sim = simulate_forward_unit(LOG, 13, 10, prefetch_latency=1)
        assert len(sim.per_outer_cycles) == 10
        assert len(set(sim.per_outer_cycles)) == 1  # deterministic

    def test_mean_cycles(self):
        sim = simulate_forward_unit(POSIT, 13, 10, prefetch_latency=1)
        assert sim.mean_cycles_per_outer == sim.total_cycles / 10


class TestPrefetchBound:
    def test_slow_dram_dominates(self):
        """When DRAM latency exceeds the compute time, the unit becomes
        prefetch-bound and cycles/outer equals the DRAM latency."""
        slow = simulate_forward_unit(POSIT, 8, 20, prefetch_latency=500)
        assert slow.prefetch_stall_cycles > 0
        assert slow.mean_cycles_per_outer == 500.0

    def test_fast_dram_no_stalls(self):
        fast = simulate_forward_unit(POSIT, 64, 20, prefetch_latency=10)
        assert fast.prefetch_stall_cycles == 0

    def test_posit_hits_prefetch_wall_before_log(self):
        """Section V.C: posit's shorter PE makes it prefetch-bound at
        DRAM latencies where the log unit is still compute-bound."""
        latency = 100  # between the two units' compute times at H=8
        posit = simulate_forward_unit(POSIT, 8, 20, prefetch_latency=latency)
        log = simulate_forward_unit(LOG, 8, 20, prefetch_latency=latency)
        assert posit.prefetch_stall_cycles > 0
        assert log.prefetch_stall_cycles == 0

    def test_jitter_only_increases_time(self):
        base = simulate_forward_unit(LOG, 13, 50, prefetch_latency=40)
        jittery = simulate_forward_unit(LOG, 13, 50, prefetch_latency=40,
                                        prefetch_jitter=200, seed=3)
        assert jittery.total_cycles >= base.total_cycles

    def test_sensitivity_sweep_monotone(self):
        rows = prefetch_sensitivity(POSIT, 13, 20, latencies=(1, 50, 100,
                                                              200, 400))
        cycles = [r["cycles_per_outer"] for r in rows]
        assert cycles == sorted(cycles)
        assert rows[0]["stall_fraction"] == 0.0
        assert rows[-1]["stall_fraction"] > 0.3


class TestSimConfig:
    def test_custom_config(self):
        config = SimConfig(inner_iterations=4, pe_latency=10,
                           initiation_interval=2, drain_cycles=0,
                           prefetch_latency=1)
        sim = simulate(config, 5)
        assert sim.total_cycles == 5 * (4 * 2 + 10)
