"""Chunked parallel sweep runner: determinism and merge correctness."""

import pytest

from repro.arith import standard_backends
from repro.core.analysis import run_op_sweep
from repro.core.sweep import (
    FIG3_BINS,
    generate_sweep_chunked,
    plan_chunks,
    stable_chunk_seed,
)
from repro.engine import ExecPlan
from repro.engine.runner import run_sweep_parallel

BINS = (FIG3_BINS[0], FIG3_BINS[4], FIG3_BINS[-1])


def _rows(result):
    return {(b, f): result.boxes[b][f].row()
            for b in result.boxes for f in result.boxes[b]}


class TestChunkPlanning:
    def test_counts_and_indices(self):
        chunks = plan_chunks("add", BINS, per_bin=25, seed=0, chunk_size=10)
        per_bin = {}
        for c in chunks:
            per_bin.setdefault(c.bin_range, []).append(c.count)
        assert all(sum(v) == 25 for v in per_bin.values())
        assert all(v == [10, 10, 5] for v in per_bin.values())

    def test_seeds_are_process_independent(self):
        # blake2b of the key string: a fixed function, not Python hash.
        s = stable_chunk_seed("add", (-10, 1), seed=3, chunk_index=2)
        assert s == stable_chunk_seed("add", (-10, 1), 3, 2)
        assert s != stable_chunk_seed("add", (-10, 1), 3, 1)
        assert s != stable_chunk_seed("mul", (-10, 1), 3, 2)

    def test_chunk_regeneration_is_deterministic(self):
        (chunk,) = plan_chunks("mul", [BINS[1]], per_bin=8, seed=1,
                               chunk_size=8)
        assert chunk.generate() == chunk.generate()

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            plan_chunks("add", BINS, per_bin=5, seed=0, chunk_size=0)

    def test_chunked_generation_appends_on_growth(self):
        small = generate_sweep_chunked("add", BINS, per_bin=6, seed=0,
                                       chunk_size=4)
        large = generate_sweep_chunked("add", BINS, per_bin=10, seed=0,
                                       chunk_size=4)
        for b in BINS:
            assert large[b][:6] == small[b]


class TestParallelRunner:
    def test_workers_do_not_change_results(self):
        backends = standard_backends()
        inline = run_sweep_parallel("add", backends, per_bin=12, bins=BINS,
                                    seed=0, n_workers=0, chunk_size=5)
        forked = run_sweep_parallel("add", backends, per_bin=12, bins=BINS,
                                    seed=0, n_workers=2, chunk_size=5)
        assert _rows(inline) == _rows(forked)

    def test_batch_measure_equals_scalar_measure(self):
        backends = standard_backends()
        batched = run_sweep_parallel("mul", backends, per_bin=10, bins=BINS,
                                     seed=2, n_workers=0, batch=True)
        scalar = run_sweep_parallel("mul", backends, per_bin=10, bins=BINS,
                                    seed=2, n_workers=0, batch=False)
        assert _rows(batched) == _rows(scalar)

    def test_matches_serial_sweep_on_same_pairs(self):
        backends = standard_backends()
        pairs = generate_sweep_chunked("add", BINS, per_bin=10, seed=4)
        serial = run_op_sweep("add", backends, bins=BINS,
                              pairs_by_bin=pairs)
        parallel = run_sweep_parallel("add", backends, per_bin=10,
                                      bins=BINS, seed=4, n_workers=0)
        assert _rows(serial) == _rows(parallel)

    def test_binary64_skipped_left_of_range(self):
        backends = standard_backends()
        result = run_sweep_parallel("add", backends, per_bin=4, bins=BINS,
                                    seed=0, n_workers=0)
        assert "binary64" not in result.boxes[BINS[0]]
        assert "binary64" in result.boxes[BINS[-1]]


class TestRunOpSweepIntegration:
    def test_serial_plan_preserves_results(self):
        backends = standard_backends()
        pairs = generate_sweep_chunked("add", BINS, per_bin=8, seed=1)
        plain = run_op_sweep("add", backends, bins=BINS, pairs_by_bin=pairs,
                             plan=ExecPlan.serial())
        batched = run_op_sweep("add", backends, bins=BINS,
                               pairs_by_bin=pairs)
        assert _rows(plain) == _rows(batched)

    def test_worker_plan_delegates_to_runner(self):
        backends = standard_backends()
        via_sweep = run_op_sweep("add", backends, per_bin=6, bins=BINS,
                                 seed=7, plan=ExecPlan(n_workers=0))
        via_runner = run_sweep_parallel("add", backends, per_bin=6,
                                        bins=BINS, seed=7, n_workers=0)
        assert _rows(via_sweep) == _rows(via_runner)

    def test_worker_plan_with_explicit_pairs_rejected(self):
        backends = standard_backends()
        pairs = generate_sweep_chunked("add", BINS, per_bin=4, seed=0)
        with pytest.raises(ValueError):
            run_op_sweep("add", backends, bins=BINS, pairs_by_bin=pairs,
                         plan=ExecPlan(n_workers=2))

    def test_fig3_accepts_plan(self):
        from repro.experiments import fig3_op_accuracy
        result = fig3_op_accuracy.run(scale="test",
                                      plan=ExecPlan(n_workers=0))
        assert result.per_bin == fig3_op_accuracy.SCALES["test"]
        assert set(result.add.boxes) == set(FIG3_BINS)
