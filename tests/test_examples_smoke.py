"""Smoke tests: every shipped example must run to completion and print
its headline content.  Kept cheap (the examples themselves use scaled
parameters)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = {
    "quickstart.py": ["UNDERFLOW", "Viterbi decode", "Table I",
                      "1.5 * 2^-10"],
    "phylogenetics_vicar.py": ["binary64 underflows", "orders of magnitude"],
    "variant_calling_lofreq.py": ["call threshold", "Summary per format"],
    "accelerator_design_space.py": ["units/SLR", "Choosing ES"],
    "custom_formats.py": ["Custom IEEE formats", "-434916"],
    "bayesian_inference.py": ["DEGENERATE", "chain mixes", "chain broken"],
}


@pytest.mark.parametrize("script,needles", sorted(CASES.items()),
                         ids=sorted(CASES))
def test_example_runs(script, needles):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in needles:
        assert needle in proc.stdout, f"{script}: missing {needle!r}"


def test_all_examples_covered():
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(CASES), "new example needs a smoke test"
