"""The format registry: construction, scalar<->batch pairing, and
capability flags — plus the inversion acceptance property that the
canonical batch-of-one path equals the legacy scalar path for every
registered format (bit-for-bit for binary64/log, element-exact for
posit/LNS).
"""

import numpy as np
import pytest

from repro.arith import (
    BIT_IDENTICAL,
    ELEMENT_EXACT,
    ORACLE,
    REGISTRY,
    STANDARD_FORMATS,
    Backend,
    FormatRegistry,
    standard_backends,
)
from repro.bigfloat import BigFloat
from repro.engine import ExecPlan, batch_backend_for, standard_batch_backends

ALL_FORMATS = sorted(REGISTRY.names())


def _equivalence_backend(name):
    """The instance whose batch mirror is fully certified (log-space
    needs the sequential sum mode for reduction certification)."""
    if name == "log":
        return REGISTRY.create(name, sum_mode="sequential")
    return REGISTRY.create(name)


@pytest.mark.parametrize("name", ALL_FORMATS)
class TestRoundTrip:
    def test_create_and_pair(self, name):
        caps = REGISTRY.capabilities(name)
        backend, batch = REGISTRY.create_pair(name)
        assert isinstance(backend, Backend)
        assert backend.name == name
        assert (batch is not None) == caps.batch
        if batch is not None:
            assert batch.scalar is backend
            assert batch.name == backend.name

    def test_exactness_class_is_declared(self, name):
        caps = REGISTRY.capabilities(name)
        assert caps.exactness in (BIT_IDENTICAL, ELEMENT_EXACT, ORACLE)
        # Oracle <=> no array implementation.
        assert (caps.exactness == ORACLE) == (not caps.batch)

    def test_reduction_certification(self, name):
        """reductions=True pairing follows the capability flag for the
        default-constructed backend."""
        caps = REGISTRY.capabilities(name)
        backend = REGISTRY.create(name)
        mirror = REGISTRY.batch_for(backend, reductions=True)
        assert (mirror is not None) == caps.reductions_certified

    def test_values_round_trip_through_the_pair(self, name):
        """from_bigfloat on the scalar side == from_bigfloats + item on
        the batch side, for probability-magnitude inputs."""
        backend, batch = REGISTRY.create_pair(name)
        if batch is None:
            pytest.skip(f"{name} has no batch mirror")
        probs = [BigFloat.exp2(-s) for s in (0, 7, 40, 900, 4000)]
        arr = batch.from_bigfloats(probs)
        for i, p in enumerate(probs):
            assert batch.item(arr, i) == backend.from_bigfloat(p)

    def test_batch_of_one_equals_legacy_scalar_forward(self, name):
        """The inversion acceptance property: the canonical plan (batch
        kernels, B=1) reproduces the legacy scalar recurrence exactly —
        bit-for-bit (binary64, sequential log), element-exact (posit,
        LNS) — on a deep-underflow forward workload."""
        from repro.apps.hmm import forward
        from repro.data.dirichlet import sample_hcg_like_hmm
        backend = _equivalence_backend(name)
        hmm = sample_hcg_like_hmm(4, 12, seed=3, bits_per_step=150.0)
        canonical = forward(hmm, backend)
        legacy = forward(hmm, backend, plan=ExecPlan.serial())
        assert canonical == legacy

    def test_batch_of_one_equals_legacy_scalar_pbd(self, name):
        from repro.apps.pbd import pbd_pvalue
        backend = _equivalence_backend(name)
        rng = np.random.default_rng(11)
        probs = [BigFloat.from_float(float(p))
                 for p in rng.uniform(1e-8, 0.2, 25)]
        canonical = pbd_pvalue(probs, 3, backend)
        legacy = pbd_pvalue(probs, 3, backend, plan=ExecPlan.serial())
        assert canonical == legacy

    def test_batch_of_one_equals_legacy_scalar_backward(self, name):
        from repro.apps.hmm_extra import backward
        from repro.data.dirichlet import sample_hcg_like_hmm
        backend = _equivalence_backend(name)
        hmm = sample_hcg_like_hmm(3, 10, seed=5, bits_per_step=120.0)
        canonical = backward(hmm, backend)
        legacy = backward(hmm, backend, plan=ExecPlan.serial())
        assert canonical == legacy


@pytest.mark.parametrize("name", ALL_FORMATS)
class TestNdFrontEndEquivalence:
    """The api-redesign acceptance property: hand-written ``repro.nd``
    expressions reproduce the app entry points bit-identically
    (binary64, sequential log) / element-exactly (posit, LNS) — under
    the canonical plan *and* the serial baseline."""

    def _workload(self):
        from repro.data.dirichlet import sample_hcg_like_hmm
        return sample_hcg_like_hmm(4, 12, seed=3, bits_per_step=150.0)

    def _forward_expression(self, hmm, backend, plan):
        import repro.nd as nd
        from repro.apps.hmm import model_arrays
        a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
        obs = list(hmm.observations)
        alpha = pi * b[:, obs[0]]
        for ot in obs[1:]:
            alpha = nd.sum(alpha[:, None] * a, axis=0) * b[:, ot]
        return nd.sum(alpha).item()

    def test_nd_forward_matches_app_both_plans(self, name):
        from repro.apps.hmm import forward
        backend = _equivalence_backend(name)
        hmm = self._workload()
        reference = forward(hmm, backend)
        for plan in (ExecPlan(), ExecPlan.serial()):
            assert self._forward_expression(hmm, backend, plan) == reference

    def test_nd_backward_matches_app_both_plans(self, name):
        import repro.nd as nd
        from repro.apps.hmm import model_arrays
        from repro.apps.hmm_extra import backward
        backend = _equivalence_backend(name)
        hmm = self._workload()
        reference = backward(hmm, backend)
        obs = list(hmm.observations)
        for plan in (ExecPlan(), ExecPlan.serial()):
            a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
            beta = nd.ones_like(a, (len(pi),))
            for t in range(len(obs) - 1, 0, -1):
                beta = nd.sum(a * (b[:, obs[t]] * beta)[None, :], axis=1)
            got = nd.sum(pi * (b[:, obs[0]] * beta)).item()
            assert got == reference

    def test_nd_pbd_matches_app_both_plans(self, name):
        import repro.nd as nd
        from repro.apps.pbd import complement, pbd_pvalue
        backend = _equivalence_backend(name)
        rng = np.random.default_rng(11)
        probs = [BigFloat.from_float(float(p))
                 for p in rng.uniform(1e-8, 0.2, 25)]
        k = 3
        reference = pbd_pvalue(probs, k, backend)
        for plan in (ExecPlan(), ExecPlan.serial()):
            pn = nd.asarray(probs, backend, plan=plan)
            qn = nd.asarray([complement(p) for p in probs], backend,
                            plan=plan)
            pr = nd.concatenate([nd.ones_like(pn, (1,)),
                                 nd.zeros_like(pn, (k - 1,))])
            pvalue = nd.zeros_like(pn, ())
            for n in range(len(probs)):
                if n >= k - 1:
                    pvalue = pvalue + pr[k - 1] * pn[n]
                shifted = nd.concatenate([nd.zeros_like(pn, (1,)),
                                          pr[:-1]])
                pr = pr * qn[n] + shifted * pn[n]
            assert pvalue.item() == reference


class TestRegistryDescribe:
    def test_describe_lists_every_format(self):
        table = REGISTRY.describe()
        for name in ALL_FORMATS:
            assert name in table
        assert "element-exact" in table and "oracle" in table

    def test_reprs_are_informative(self):
        assert "7 formats" in repr(REGISTRY)
        assert "compiled tiers" in repr(REGISTRY)
        spec = REGISTRY.spec("posit(64,9)")
        assert "posit(64,9)" in repr(spec) and "standard" in repr(spec)
        assert "quire_fused_sum" in repr(spec.caps)
        assert "compiled=forward" in repr(spec.caps)

    def test_describe_has_compiled_column(self):
        """``python -m repro.experiments --formats`` surfaces the
        compiled tier per format."""
        table = REGISTRY.describe()
        header = table.splitlines()[1]
        assert "compiled" in header
        posit_row = next(line for line in table.splitlines()
                         if line.startswith("posit(64,12)"))
        assert "forward_trace" in posit_row


class TestCapabilityTable:
    def test_posit_flags(self):
        caps = REGISTRY.capabilities("posit(64,12)")
        assert caps.max_width == 64
        assert "quire_fused_sum" in caps.fused_ops
        assert caps.exactness == ELEMENT_EXACT
        # PR 8: the compiled tier is declared per format.
        assert caps.compiled
        assert caps.compiled_ops == ("forward", "forward_trace", "pbd")
        assert not REGISTRY.capabilities("binary64").compiled
        assert REGISTRY.capabilities("lns(12,50)").compiled_ops == ()

    def test_log_flags(self):
        caps = REGISTRY.capabilities("log")
        assert caps.exactness == BIT_IDENTICAL
        assert caps.fused_ops == ("lse_nary",)
        # Default (n-ary) log-space is not reductions-certified ...
        assert not caps.reductions_certified
        # ... but a sequential-mode instance is, per-instance.
        seq = REGISTRY.create("log", sum_mode="sequential")
        assert REGISTRY.batch_for(seq, reductions=True) is not None

    def test_oracle_flags(self):
        caps = REGISTRY.capabilities("bigfloat256")
        assert caps.exactness == ORACLE
        assert caps.max_width is None
        assert not caps.batch

    def test_lns_flags(self):
        caps = REGISTRY.capabilities("lns(12,50)")
        assert caps.exactness == ELEMENT_EXACT
        assert caps.max_width == 64  # 2 + 12 + 50 code bits


class TestRegistryApi:
    def test_standard_names_and_order(self):
        assert tuple(REGISTRY.standard()) == STANDARD_FORMATS
        assert set(REGISTRY.standard_names()) == set(STANDARD_FORMATS)

    def test_standard_backends_delegates(self):
        legacy = standard_backends(underflow="flush")
        via_registry = REGISTRY.standard(underflow="flush")
        assert {n: type(b).__name__ for n, b in legacy.items()} \
            == {n: type(b).__name__ for n, b in via_registry.items()}
        for name in ("posit(64,9)", "posit(64,12)", "posit(64,18)"):
            assert legacy[name].env.underflow == "flush"
            assert via_registry[name].env.underflow == "flush"

    def test_standard_batch_backends_delegates(self):
        batches = standard_batch_backends()
        assert set(batches) == set(STANDARD_FORMATS)
        for name, mirror in batches.items():
            assert mirror is not None and mirror.name == name

    def test_engine_pairing_delegates(self):
        backend = REGISTRY.create("posit(64,18)")
        assert type(batch_backend_for(backend)).__name__ == "BatchPosit"

    def test_dynamic_posit_and_lns_names(self):
        assert REGISTRY.create("posit(16,1)").env.nbits == 16
        assert REGISTRY.capabilities("posit(32,6)").max_width == 32
        assert REGISTRY.create("lns(4,8)").env.frac_bits == 8
        assert REGISTRY.create("bigfloat128").prec == 128

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.create("binary32")

    def test_duplicate_registration_rejected(self):
        fresh = FormatRegistry()
        spec = REGISTRY.spec("binary64")
        fresh.register(spec)
        with pytest.raises(ValueError):
            fresh.register(spec)

    def test_oracle_has_no_pairing(self):
        assert batch_backend_for(REGISTRY.create("bigfloat256")) is None

    def test_pairing_is_memoized_per_backend(self):
        """Mirrors carry state (BatchLNS's exact sb memo), so repeated
        pairing of the same scalar backend must return the same
        mirror — while distinct backends get distinct mirrors."""
        one = REGISTRY.create("lns(12,50)")
        other = REGISTRY.create("lns(12,50)")
        assert REGISTRY.batch_for(one) is REGISTRY.batch_for(one)
        assert REGISTRY.batch_for(one) is not REGISTRY.batch_for(other)
        # The reductions tier hands back the same cached mirror.
        seq = REGISTRY.create("log", sum_mode="sequential")
        assert REGISTRY.batch_for(seq) is \
            REGISTRY.batch_for(seq, reductions=True)

    def test_compiled_for_pairs_and_memoizes(self):
        """``compiled_for`` hands out one kernel set per batch mirror
        (the JIT cache and hoisted constants live there), and None for
        mirrors without a registered tier."""
        from repro.engine.compiled import PositPlaneKernels
        scalar = REGISTRY.create("posit(64,12)")
        mirror = REGISTRY.batch_for(scalar)
        ck = REGISTRY.compiled_for(mirror)
        assert isinstance(ck, PositPlaneKernels)
        assert ck.backend is mirror
        assert REGISTRY.compiled_for(mirror) is ck
        assert REGISTRY.compiled_for(
            batch_backend_for(REGISTRY.create("binary64"))) is None
        assert REGISTRY.compiled_for(None) is None
