"""repro.nd core semantics: construction, representation dispatch,
operators, reductions, fused ops, ambient contexts, and equality with
the app layer (the canonical-vs-serial oracle extended through the new
front end).
"""

import numpy as np
import pytest

import repro.nd as nd
from repro.arith import (
    REGISTRY,
    BigFloatBackend,
    LogSpaceBackend,
    PositBackend,
)
from repro.bigfloat import BigFloat
from repro.engine import ExecPlan
from repro.formats import PositEnv

FORMATS = ["binary64", "log", "posit(64,9)", "posit(64,12)", "lns(12,50)",
           "bigfloat256"]
VALUES = [0.5, 0.25, 0.125, 1.0, 0.75, 2.0 ** -40]


class TestConstruction:
    def test_asarray_shapes_and_tags(self):
        x = nd.asarray([[0.5, 0.25], [0.125, 1.0]], "binary64")
        assert x.shape == (2, 2) and x.ndim == 2 and x.size == 4
        assert x.format == "binary64" and x.batch
        assert len(x) == 2

    def test_asarray_from_bigfloats_and_numpy(self):
        bfs = [BigFloat.exp2(-5), BigFloat.exp2(-6)]
        x = nd.asarray(bfs, "posit(64,9)")
        assert x.to_bigfloats() == bfs
        y = nd.asarray(np.array([0.5, 0.25]), "binary64")
        assert list(y.to_floats()) == [0.5, 0.25]

    def test_asarray_passthrough_and_reformat(self):
        x = nd.asarray(VALUES, "binary64")
        assert nd.asarray(x, "binary64") is x
        z = nd.asarray(x, "posit(64,9)")
        assert z.format == "posit(64,9)"
        assert z.to_bigfloats() == x.to_bigfloats()

    def test_zeros_ones_full(self):
        for fmt in FORMATS:
            z = nd.zeros((2, 3), fmt)
            assert z.shape == (2, 3) and z.is_zero().all()
            o = nd.ones((4,), fmt)
            assert not o.is_zero().any()
            assert [b.to_float() for b in o.to_bigfloats()] == [1.0] * 4
        f = nd.full((3,), 0.25, "binary64")
        assert list(f.to_floats()) == [0.25] * 3

    def test_like_constructors_follow_representation(self):
        serial = nd.asarray(VALUES, "binary64", plan=ExecPlan.serial())
        assert not serial.batch
        assert not nd.ones_like(serial, (2,)).batch
        batched = nd.asarray(VALUES, "binary64")
        assert nd.zeros_like(batched, (2,)).batch

    def test_wrap_round_trip(self):
        backend = REGISTRY.create("posit(64,12)")
        bb = REGISTRY.batch_for(backend)
        codes = bb.from_bigfloats([BigFloat.exp2(-3)])
        x = nd.wrap(codes, bb=bb)
        assert x.batch and x.item(0) == int(codes[0])

    def test_missing_format_is_an_error(self):
        with pytest.raises(TypeError, match="use_format"):
            nd.asarray([0.5])

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                nd.asarray([bad], "binary64")
            with pytest.raises(ValueError):
                nd.asarray(np.array([0.5, bad]), "binary64")

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_float_ndarray_fast_path_matches_exact_path(self, fmt):
        """``_convert``'s vectorized ``from_floats`` route (taken for
        float-dtype ndarrays) must encode bit-identically to the
        per-element BigFloat route (taken for lists)."""
        vals = [0.0, 0.5, 2.0 ** -40, 1.0 + 2.0 ** -52, 3.0,
                1e300, 1e-300, 0.1]
        fast = nd.asarray(np.array(vals), fmt)
        exact = nd.asarray(vals, fmt)
        assert [fast.item(i) for i in range(fast.size)] == \
               [exact.item(i) for i in range(exact.size)]


class TestRepresentationDispatch:
    """FArray op -> registry capability lookup -> batch kernel
    (canonical) or scalar fallback."""

    def test_batch_by_default_where_paired(self):
        for fmt in ["binary64", "log", "posit(64,9)", "lns(12,50)"]:
            assert nd.asarray(VALUES, fmt).batch, fmt

    def test_oracle_never_batches(self):
        assert not nd.asarray(VALUES, "bigfloat256").batch

    def test_serial_plan_forces_scalar(self):
        x = nd.asarray(VALUES, "binary64", plan=ExecPlan.serial())
        assert not x.batch

    def test_certified_tier_demotes_nary_log(self):
        # n-ary log-space is elementwise-exact but not
        # reduction-certified; sequential mode is both.
        assert nd.asarray(VALUES, "log").batch
        assert not nd.asarray(VALUES, "log", certified=True).batch
        seq = LogSpaceBackend(sum_mode="sequential")
        assert nd.asarray(VALUES, seq, certified=True).batch

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_representations_hold_identical_values(self, fmt):
        canonical = nd.asarray(VALUES, fmt)
        serial = nd.asarray(VALUES, fmt, plan=ExecPlan.serial())
        assert canonical.tolist() == serial.tolist()


class TestOperators:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_add_mul_match_scalar_backend(self, fmt):
        backend = REGISTRY.create(fmt)
        x = nd.asarray(VALUES, backend)
        y = nd.asarray(list(reversed(VALUES)), backend)
        got_add = (x + y).tolist()
        got_mul = (x * y).tolist()
        sx, sy = x.tolist(), y.tolist()
        assert got_add == [backend.add(a, b) for a, b in zip(sx, sy)]
        assert got_mul == [backend.mul(a, b) for a, b in zip(sx, sy)]

    @pytest.mark.parametrize("fmt", ["binary64", "log", "posit(64,9)",
                                     "lns(12,50)", "bigfloat256"])
    def test_div_matches_scalar_backend(self, fmt):
        backend = REGISTRY.create(fmt)
        x = nd.asarray([0.5, 0.25], backend)
        y = nd.asarray([0.25, 0.5], backend)
        got = (x / y).tolist()
        assert got == [backend.div(a, b)
                       for a, b in zip(x.tolist(), y.tolist())]

    def test_sub_matches_scalar_backend(self):
        for fmt in FORMATS:
            backend = REGISTRY.create(fmt)
            x = nd.asarray([0.5, 0.5], backend)
            y = nd.asarray([0.25, 0.125], backend)
            assert (x - y).tolist() == \
                [backend.sub(a, b) for a, b in zip(x.tolist(), y.tolist())]

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("op", ["sub", "div"])
    def test_sub_div_native_batch_no_scalar_loop(self, fmt, op, monkeypatch):
        """Registry formats dispatch - and / to the native batch
        kernels: the result stays on the vectorized representation and
        no per-element decode (``BatchBackend.from_items``) ever runs,
        and it is element-exact vs the serial (object-mode) expression.
        """
        backend = REGISTRY.create(fmt)
        x = nd.asarray(VALUES, backend)
        y = nd.asarray([v / 2 for v in VALUES], backend)
        from repro.engine.batch import BatchBackend

        def boom(self, values, shape=None):  # pragma: no cover
            raise AssertionError("scalar from_items fallback ran")

        monkeypatch.setattr(BatchBackend, "from_items", boom)
        got = x - y if op == "sub" else x / y
        if fmt != "bigfloat256":
            assert x.batch and got.batch
        serial = ExecPlan.serial()
        xs = nd.asarray(VALUES, backend, plan=serial)
        ys = nd.asarray([v / 2 for v in VALUES], backend, plan=serial)
        want = xs - ys if op == "sub" else xs / ys
        assert not want.batch
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_multiply_add_matches_expression(self, fmt):
        backend = REGISTRY.create(fmt)
        x = nd.asarray(VALUES, backend)
        y = nd.asarray(list(reversed(VALUES)), backend)
        z = nd.asarray([v / 4 for v in VALUES], backend)
        fused = nd.multiply_add(x, y, z)
        spelled = x * y + z
        assert fused.tolist() == spelled.tolist()
        assert fused.batch == x.batch

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_dot_dispatch_matches_mul_sum(self, fmt):
        backend = REGISTRY.create(fmt)
        x = nd.asarray([VALUES, list(reversed(VALUES))], backend)
        y = nd.asarray([v / 2 for v in VALUES], backend)
        got = nd.dot(x, y, axis=-1)
        want = (x * y).sum(axis=-1)
        assert got.tolist() == want.tolist()

    def test_batch_sub_domain_errors_match_scalar(self):
        x = nd.asarray([0.25], "log")
        y = nd.asarray([0.5], "log")
        with pytest.raises(ValueError):
            x - y
        with pytest.raises(ZeroDivisionError):
            x / nd.zeros((1,), "log")

    def test_reflected_ops_with_scalars(self):
        x = nd.asarray([0.5, 0.25], "binary64")
        assert list((1 - x).to_floats()) == [0.5, 0.75]
        assert list((2 * x).to_floats()) == [1.0, 0.5]
        assert list((x / 2).to_floats()) == [0.25, 0.125]
        assert list((BigFloat.exp2(-1) + x).to_floats()) == [1.0, 0.75]

    def test_numpy_array_operand(self):
        x = nd.asarray([0.5, 0.25], "binary64")
        left = np.asarray([2.0, 4.0]) * x
        right = x * np.asarray([2.0, 4.0])
        assert isinstance(left, nd.FArray) and isinstance(right, nd.FArray)
        assert list(left.to_floats()) == [1.0, 1.0]
        assert list(right.to_floats()) == [1.0, 1.0]

    def test_format_mismatch_raises(self):
        x = nd.asarray([0.5], "binary64")
        y = nd.asarray([0.5], "posit(64,9)")
        with pytest.raises(TypeError, match="format mismatch"):
            x + y

    def test_log_sum_modes_do_not_mix_silently(self):
        """Name equality is not numerics equality: sequential- and
        n-ary-mode log arrays must not combine (their reduction folds
        differ), and asarray must honor the requested mode."""
        seq = nd.asarray(VALUES, LogSpaceBackend(sum_mode="sequential"))
        nary = nd.asarray(VALUES, "log")
        with pytest.raises(TypeError, match="format mismatch"):
            seq + nary
        requested = nd.asarray(seq, "log")
        assert requested.backend.sum_mode == "nary"
        assert requested.tolist() == seq.tolist()  # values unchanged

    def test_posit_underflow_modes_do_not_mix_silently(self):
        """Same boundary for posit: underflow mode changes rounding
        without changing the format name."""
        flush = nd.asarray([0.5], "posit(64,9)", underflow="flush")
        saturate = nd.asarray([0.5], "posit(64,9)")
        with pytest.raises(TypeError, match="format mismatch"):
            flush + saturate
        requested = nd.asarray(flush, "posit(64,9)")
        assert requested.backend.env.underflow == "saturate"

    def test_string_formats_share_one_default_backend(self):
        """Name-built backends are memoized so the registry's mirror
        cache (BatchLNS's exact sb memo) survives across calls."""
        x = nd.asarray([0.5], "lns(12,50)")
        y = nd.asarray([0.25], "lns(12,50)")
        assert x.backend is y.backend
        assert x._bb is y._bb

    def test_mixed_representation_aligns_to_left(self):
        x = nd.asarray(VALUES, "posit(64,9)")
        y = nd.asarray(VALUES, "posit(64,9)", plan=ExecPlan.serial())
        out = x * y
        assert out.batch
        assert out.tolist() == (y * y).tolist()


class TestStructure:
    def test_indexing_slicing(self):
        x = nd.asarray([[0.5, 0.25], [0.125, 1.0]], "binary64")
        assert x[0, 1].item() == 0.25
        assert list(x[:, 0].to_floats()) == [0.5, 0.125]
        assert x[0].shape == (2,)
        assert x[:, None].shape == (2, 1, 2)
        assert list(x[:, [1, 0]][0].to_floats()) == [0.25, 0.5]

    def test_transpose_reshape_ravel(self):
        x = nd.asarray([[0.5, 0.25], [0.125, 1.0]], "posit(64,9)")
        assert x.T.shape == (2, 2) and x.T[1, 0].item() == x[0, 1].item()
        assert x.reshape(4).shape == (4,)
        assert x.ravel().tolist() == x.reshape(4).tolist()

    def test_concatenate_stack_broadcast(self):
        a = nd.asarray([0.5], "log")
        b = nd.asarray([0.25], "log")
        assert nd.concatenate([a, b]).shape == (2,)
        assert nd.stack([a, b], axis=0).shape == (2, 1)
        wide = nd.broadcast_to(a, (3, 1))
        assert wide.shape == (3, 1)
        assert all(v == a.item(0) for row in wide.tolist() for v in row)

    def test_take_along_axis(self):
        x = nd.asarray([[0.5, 0.25, 0.125]], "binary64")
        idx = np.array([[2, 0]])
        out = nd.take_along_axis(x, idx, axis=1)
        assert list(out.to_floats()[0]) == [0.125, 0.5]


class TestReductions:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_sum_matches_scalar_fold(self, fmt):
        backend = REGISTRY.create(fmt)
        x = nd.asarray([VALUES, list(reversed(VALUES))], backend)
        got = nd.sum(x, axis=1).tolist()
        rows = x.tolist()
        assert got == [backend.sum(row) for row in rows]

    def test_sum_default_reduces_everything(self):
        x = nd.asarray([[0.5, 0.25], [0.125, 0.125]], "binary64")
        assert nd.sum(x).item() == 1.0
        assert nd.sum(x).shape == ()

    def test_dot_and_matmul(self):
        m = np.array([[0.5, 0.25], [0.125, 0.0625]])
        v = np.array([0.5, 0.25])
        fm = nd.asarray(m, "binary64")
        fv = nd.asarray(v, "binary64")
        np.testing.assert_array_equal((fm @ fm).to_floats(), m @ m)
        np.testing.assert_array_equal((fm @ fv).to_floats(), m @ v)
        np.testing.assert_array_equal((fv @ fm).to_floats(), v @ m)
        assert (fv @ fv).item() == float(v @ v)
        assert nd.dot(fv, fv).item() == float(v @ v)

    def test_canonical_equals_serial_reductions(self):
        """The certification statement, through the front end: same
        expression, both representations, identical results."""
        for fmt in ["binary64", "posit(64,9)", "lns(12,50)"]:
            x = nd.asarray(VALUES, fmt)
            s = nd.asarray(VALUES, fmt, plan=ExecPlan.serial())
            assert nd.sum(x).item() == nd.sum(s).item(), fmt
        seq = LogSpaceBackend(sum_mode="sequential")
        assert nd.sum(nd.asarray(VALUES, seq)).item() == \
            nd.sum(nd.asarray(VALUES, seq, plan=ExecPlan.serial())).item()

    def test_logsumexp_log_fast_path(self):
        x = nd.asarray([1e-3, 1e-4, 1e-5], "log")
        out = nd.logsumexp(x)
        assert out == np.asarray(nd.sum(x).data, dtype=float)

    def test_logsumexp_other_formats_via_oracle(self):
        x = nd.asarray([0.25, 0.25], "posit(64,9)")
        assert nd.logsumexp(x) == pytest.approx(np.log(0.5))
        z = nd.zeros((2,), "binary64")
        assert nd.logsumexp(z) == -np.inf


class TestFusedOps:
    def test_posit_fused_sum_and_dot(self):
        x = nd.asarray([0.5, 0.25, 2.0 ** -40], "posit(32,2)")
        assert nd.fused_sum(x).to_floats() == pytest.approx(0.75 + 2.0 ** -40)
        assert nd.fused_dot(x, x).to_floats() == pytest.approx(0.3125,
                                                               rel=1e-9)

    def test_fused_matches_scalar_quire(self):
        backend = REGISTRY.create("posit(32,2)")
        x = nd.asarray([0.5, 0.25, 2.0 ** -20, 0.125], backend)
        serial = nd.asarray([0.5, 0.25, 2.0 ** -20, 0.125], backend,
                            plan=ExecPlan.serial())
        assert nd.fused_sum(x).item() == nd.fused_sum(serial).item()
        assert nd.fused_dot(x, x).item() == nd.fused_dot(serial,
                                                         serial).item()

    def test_unfused_formats_raise(self):
        for fmt in ["binary64", "log", "lns(12,50)", "bigfloat256"]:
            x = nd.asarray([0.5, 0.25], fmt)
            with pytest.raises(ValueError, match="does not certify"):
                nd.fused_sum(x)
            with pytest.raises(ValueError, match="does not certify"):
                nd.fused_dot(x, x)


class TestAmbientContexts:
    def test_use_format_scopes(self):
        assert nd.current_backend() is None
        with nd.use_format("posit(64,9)") as backend:
            assert nd.current_backend() is backend
            x = nd.asarray([0.5])
            assert x.format == "posit(64,9)"
            with nd.use_format("binary64"):
                assert nd.asarray([0.5]).format == "binary64"
            assert nd.current_backend() is backend
        assert nd.current_backend() is None

    def test_use_format_accepts_backend_and_kwargs(self):
        with nd.use_format(PositBackend(PositEnv(32, 2))):
            assert nd.asarray([0.5]).format == "posit(32,2)"
        with nd.use_format("log", sum_mode="sequential") as backend:
            assert backend.sum_mode == "sequential"

    def test_use_plan_drives_representation(self):
        with nd.use_plan(ExecPlan.serial()):
            assert not nd.asarray([0.5], "binary64").batch
        assert nd.asarray([0.5], "binary64").batch

    def test_ten_line_workload(self):
        """The README example: a new experiment is ~10 lines of array
        math, and the answer matches the scalar reference exactly."""
        with nd.use_format("posit(32,2)"):
            p = nd.asarray([0.5, 0.25, 0.125])
            q = 1 - p
            joint = nd.sum(p * q)
        backend = REGISTRY.create("posit(32,2)")
        acc = backend.zero()
        for v in [0.5, 0.25, 0.125]:
            pv = backend.from_float(v)
            qv = backend.from_float(1 - v)
            acc = backend.add(acc, backend.mul(pv, qv))
        assert joint.item() == acc


class TestAppEquivalence:
    """The nd front end reproduces the app layer (which itself runs on
    nd) and, transitively, the pre-redesign outputs the equality suite
    pins."""

    def _hmm(self):
        from repro.data.dirichlet import sample_hmm
        return sample_hmm(3, 4, 12, seed=7)

    @pytest.mark.parametrize("make_backend", [
        lambda: REGISTRY.create("binary64"),
        lambda: LogSpaceBackend(sum_mode="sequential"),
        lambda: LogSpaceBackend(),
        lambda: REGISTRY.create("posit(64,12)"),
        lambda: BigFloatBackend(128),
    ])
    def test_forward_expression_matches_app(self, make_backend):
        from repro.apps.hmm import forward, model_arrays
        backend = make_backend()
        hmm = self._hmm()
        a, b, pi = model_arrays(hmm, backend, certified=True)
        obs = list(hmm.observations)
        alpha = pi * b[:, obs[0]]
        for ot in obs[1:]:
            alpha = nd.sum(alpha[:, None] * a, axis=0) * b[:, ot]
        assert nd.sum(alpha).item() == forward(hmm, backend)

    def test_pbd_expression_matches_app(self):
        from repro.apps.pbd import complement, pbd_pvalue
        rng = np.random.default_rng(5)
        probs = [BigFloat.from_float(float(p))
                 for p in rng.uniform(1e-6, 0.4, 12)]
        k = 3
        backend = REGISTRY.create("posit(64,9)")
        pn = nd.asarray(probs, backend)
        qn = nd.asarray([complement(p) for p in probs], backend)
        pr = nd.concatenate([nd.ones_like(pn, (1,)),
                             nd.zeros_like(pn, (k - 1,))])
        pvalue = nd.zeros_like(pn, ())
        for n in range(len(probs)):
            if n >= k - 1:
                pvalue = pvalue + pr[k - 1] * pn[n]
            shifted = nd.concatenate([nd.zeros_like(pn, (1,)), pr[:-1]])
            pr = pr * qn[n] + shifted * pn[n]
        assert pvalue.item() == pbd_pvalue(probs, k, backend)

    def test_forward_batch_accepts_ragged_sequences(self):
        """Ragged batches fall back to per-sequence passes (the old
        scalar-path behaviour, now for every format)."""
        from repro.apps.hmm import forward, forward_batch
        from repro.apps.hmm_extra import backward_batch
        hmm = self._hmm()
        ragged = [tuple(hmm.observations[:8]), tuple(hmm.observations)]
        for backend in (LogSpaceBackend(sum_mode="sequential"),
                        BigFloatBackend(128)):
            got = forward_batch(hmm, backend, ragged)
            expect = [forward(hmm, backend, observations=seq)
                      for seq in ragged]
            assert got == expect
            assert len(backward_batch(hmm, backend, ragged)) == 2

    def test_forward_ambient_backend(self):
        from repro.apps.hmm import forward
        hmm = self._hmm()
        backend = LogSpaceBackend(sum_mode="sequential")
        with nd.use_format(backend):
            assert forward(hmm) == forward(hmm, backend)

    def test_model_arrays_shims_removed(self):
        """The PR 4 one-release DeprecationWarning shims are gone: the
        names now fail hard instead of warning."""
        from repro.apps import hmm as hmm_module
        with pytest.raises(AttributeError):
            hmm_module.model_values
        with pytest.raises(AttributeError):
            hmm_module.batch_model_arrays
        with pytest.raises(ImportError):
            from repro.apps.hmm import model_values  # noqa: F401
