"""LoFreq-style variant calling: Poisson-binomial p-values over pileup
columns with the 2^-200 significance threshold (the paper's second case
study).

Demonstrates:
  * p-values spanning 2^-40 down to 2^-40,000 on synthetic columns,
  * per-format p-value accuracy, underflow, and call concordance,
  * the column-unit accelerator's timing/resource trade-off.

Run:  python examples/variant_calling_lofreq.py
"""

import numpy as np

from repro.apps.lofreq import run_lofreq
from repro.arith import standard_backends
from repro.data import CALL_THRESHOLD_SCALE, column_for_target_scale
from repro.hw import LOG, POSIT, ColumnUnit, paper_scale_shapes
from repro.report import render_table


def main():
    rng = np.random.default_rng(11)
    targets = [-40, -150, -400, -2_000, -12_000, -40_000]
    columns = [column_for_target_scale(rng, t, label=f"col@2^{t}")
               for t in targets]
    print(f"Synthesized {len(columns)} pileup columns with p-values "
          f"targeting 2^{targets}")
    print(f"LoFreq call threshold: p < 2^{CALL_THRESHOLD_SCALE}\n")

    result = run_lofreq(columns, standard_backends(underflow="flush"))

    rows = []
    for fmt, scores in result.scores.items():
        for s in scores:
            rows.append({
                "column": s.column.label,
                "format": fmt,
                "true exp": s.reference_scale,
                "status": s.result.status,
                "log10 err": s.result.log10_error,
                "called": s.called,
                "should call": s.critical,
            })
    print(render_table(rows))

    print("\nSummary per format:")
    summary = [{
        "format": fmt,
        "underflows": result.underflow_count(fmt),
        "call mismatches": result.call_discordance(fmt),
    } for fmt in result.scores]
    print(render_table(summary))

    print("\nColumn-unit accelerator on a SARS-CoV-2-scale dataset shape:")
    shape = paper_scale_shapes(seed=3, n_datasets=1)[0]
    rows = []
    for style, name in ((LOG, "log"), (POSIT, "posit(64,12)")):
        unit = ColumnUnit(style)
        rows.append({
            "unit": name,
            "dataset time (s)": unit.dataset_seconds(shape),
            "MMAPS/CLB": unit.mmaps_per_clb(shape),
            "LUTs": unit.resources().lut,
        })
    print(render_table(rows))


if __name__ == "__main__":
    main()
