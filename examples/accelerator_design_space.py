"""Accelerator design-space exploration with the hardware models.

Goes beyond the paper's fixed configurations: sweeps H for the forward
unit, PE count for the column unit, and ES for the posit datapath, and
reports where each design is compute- vs prefetch-bound, what it costs,
and how many units fit on an Alveo U250 die slice.

Run:  python examples/accelerator_design_space.py
"""

from repro.formats import PositEnv
from repro.hw import (
    LOG,
    POSIT,
    ColumnUnit,
    ForwardUnit,
    paper_scale_shapes,
    units_per_slr,
)
from repro.report import render_table


def forward_unit_sweep():
    print("Forward-algorithm unit design space (T=500,000):")
    rows = []
    for h in (8, 13, 16, 32, 48, 64, 96, 128):
        for style, name in ((LOG, "log"), (POSIT, "posit18")):
            unit = ForwardUnit(style, h)
            timing = unit.timing(500_000)
            rows.append({
                "H": h,
                "style": name,
                "time (s)": unit.seconds(500_000),
                "PE latency": unit.pe_latency,
                "bound": "prefetch" if timing.prefetch_bound else "compute",
                "LUTs": unit.resources().lut,
                "units/SLR": units_per_slr(unit.resources()).units_per_slr,
            })
    print(render_table(rows))


def column_unit_pe_sweep():
    shape = paper_scale_shapes(seed=0, n_datasets=1)[0]
    print("\nColumn unit: PE-count sweep on one dataset shape:")
    rows = []
    for n_pes in (2, 4, 8, 16, 32):
        for style, name in ((LOG, "log"), (POSIT, "posit12")):
            unit = ColumnUnit(style, n_pes=n_pes)
            rows.append({
                "PEs": n_pes,
                "style": name,
                "dataset time (s)": unit.dataset_seconds(shape),
                "LUTs": unit.resources().lut,
                "units/SLR": units_per_slr(unit.resources()).units_per_slr,
            })
    print(render_table(rows))


def es_design_choice():
    print("\nChoosing ES: range vs precision (Table I trade-off):")
    rows = []
    for es in (6, 9, 12, 15, 18, 21):
        env = PositEnv(64, es)
        rows.append({
            "ES": es,
            "smallest positive": f"2^{env.min_scale}",
            "fraction bits @2^-500": env.fraction_bits_at_scale(-500),
            "fraction bits @2^-31000": (
                env.fraction_bits_at_scale(-31_000)
                if env.min_scale <= -31_000 else None),
            "fraction bits @2^-400000": (
                env.fraction_bits_at_scale(-400_000)
                if env.min_scale <= -400_000 else None),
        })
    print(render_table(rows))
    print("Reading: small ES = more precision while in range; large ES = "
          "the only configs that survive LoFreq's 2^-434,916 p-values.")


def main():
    forward_unit_sweep()
    column_unit_pe_sweep()
    es_design_choice()


if __name__ == "__main__":
    main()
