"""Quickstart: the paper's core idea in 60 lines.

Statistical computations multiply probabilities until they fall below
binary64's 2**-1074 floor.  The standard fix — log-space — trades away
precision; posits keep both range and precision.  This example shows all
three representations handling the same tiny number, and the bit-level
reason why.

Run:  python examples/quickstart.py
"""

from repro.arith import REGISTRY, standard_backends
from repro.bigfloat import BigFloat, log10_relative_error
from repro.core import measure_op, table1_rows
from repro.formats import PositEnv, Real
from repro.report import render_table


def main():
    # ------------------------------------------------------------------
    # 0. The execution plane: one registry entry per format.
    # ------------------------------------------------------------------
    print("Registered formats (scalar backend + batch mirror + flags):")
    for name in REGISTRY.names():
        caps = REGISTRY.capabilities(name)
        batch = "batched" if caps.batch else "scalar-only"
        print(f"  {name:14s} {caps.exactness:14s} {batch}")
    print()
    # ------------------------------------------------------------------
    # 1. A probability far outside binary64's range: 2**-20_000.
    # ------------------------------------------------------------------
    tiny = BigFloat.exp2(-20_000)
    print("The value 2^-20000 in each representation:")
    for name, backend in standard_backends().items():
        encoded = backend.from_bigfloat(tiny)
        if backend.is_zero(encoded):
            desc = "UNDERFLOW (becomes exactly 0)"
        else:
            err = log10_relative_error(tiny, backend.to_bigfloat(encoded))
            desc = f"represented, log10(rel err) = {err:.1f}"
        print(f"  {name:14s} {desc}")

    # ------------------------------------------------------------------
    # 2. Accuracy of one addition at that magnitude, per format.
    # ------------------------------------------------------------------
    x = Real(0, (1 << 60) + 987_654_321, -20_000 - 60)
    y = Real(0, (1 << 60) + 123_456_789, -20_001 - 60)
    print("\nAdding two ~2^-20000 probabilities (log10 relative error):")
    rows = []
    for name, backend in standard_backends().items():
        res = measure_op(backend, "add", x, y)
        rows.append({"format": name, "status": res.status,
                     "log10 rel err": res.log10_error})
    print(render_table(rows))

    # ------------------------------------------------------------------
    # 3. Why: the posit bit-field taper (the paper's Figure 2 / Table I).
    # ------------------------------------------------------------------
    print("\nPosit(8,2) worked example from the paper (0_0001_10_1):")
    env = PositEnv(8, 2)
    layout = env.field_layout(0b0_0001_10_1)
    print(f"  fields: {layout}")
    print(f"  value : {env.to_float(0b0_0001_10_1)}  (paper: 1.5 * 2^-10)")

    print("\nTable I (computed from the format implementations):")
    print(render_table([r.render() for r in table1_rows()]))


if __name__ == "__main__":
    main()
