"""Quickstart: the paper's core idea in 60 lines, on the repro.nd API.

Statistical computations multiply probabilities until they fall below
binary64's 2**-1074 floor.  The standard fix — log-space — trades away
precision; posits keep both range and precision.  This example shows all
three representations handling the same tiny number through
``repro.nd`` format-tagged arrays, and the bit-level reason why.

Run:  python examples/quickstart.py
"""

import repro.nd as nd
from repro.arith import REGISTRY
from repro.bigfloat import BigFloat, log10_relative_error
from repro.core import measure_op, table1_rows
from repro.formats import PositEnv, Real
from repro.report import render_table


def main():
    # ------------------------------------------------------------------
    # 0. The execution plane: one registry entry per format.
    # ------------------------------------------------------------------
    print(REGISTRY.describe())
    print()
    # ------------------------------------------------------------------
    # 1. A probability far outside binary64's range: 2**-20_000.
    # ------------------------------------------------------------------
    tiny = BigFloat.exp2(-20_000)
    print("The value 2^-20000 in each representation:")
    for name in REGISTRY.standard_names():
        encoded = nd.asarray([tiny], name)
        if encoded.is_zero()[0]:
            desc = "UNDERFLOW (becomes exactly 0)"
        else:
            err = log10_relative_error(tiny, encoded.to_bigfloats()[0])
            desc = f"represented, log10(rel err) = {err:.1f}"
        print(f"  {name:14s} {desc}")

    # ------------------------------------------------------------------
    # 2. A workload is ~10 lines of array math: joint probability of
    #    independent events, per format, vectorized end to end.
    # ------------------------------------------------------------------
    print("\nproduct of 2048 probabilities of 2^-10 (= 2^-20480), "
          "per format:")
    probs = [BigFloat.exp2(-10)] * 2048
    for name in REGISTRY.standard_names():
        with nd.use_format(name):
            joint = nd.asarray(probs)
            # Pairwise multiplicative fold, vectorized at every level.
            while joint.size > 1:
                mid = joint.size // 2
                joint = joint[:mid] * joint[mid:mid * 2]
            status = ("underflowed to 0" if joint.is_zero()[0]
                      else f"2^{joint.to_bigfloats()[0].scale}")
            print(f"  {name:14s} {status}")

    # ------------------------------------------------------------------
    # 3. Accuracy of one addition at that magnitude, per format.
    # ------------------------------------------------------------------
    x = Real(0, (1 << 60) + 987_654_321, -20_000 - 60)
    y = Real(0, (1 << 60) + 123_456_789, -20_001 - 60)
    print("\nAdding two ~2^-20000 probabilities (log10 relative error):")
    rows = []
    for name in REGISTRY.standard_names():
        res = measure_op(REGISTRY.create(name), "add", x, y)
        rows.append({"format": name, "status": res.status,
                     "log10 rel err": res.log10_error})
    print(render_table(rows))

    # ------------------------------------------------------------------
    # 4. A real workload is one call: Viterbi decoding (the forward
    #    recurrence under the max-product semiring, plus traceback).
    # ------------------------------------------------------------------
    from repro.data.dirichlet import sample_hmm
    from repro.workloads import viterbi

    hmm = sample_hmm(4, 5, 16, seed=0)
    print("\nViterbi decode of one 16-step HMM sequence, per format:")
    for name in REGISTRY.standard_names():
        path = viterbi(hmm, REGISTRY.create(name))
        print(f"  {name:14s} path = {''.join(map(str, path.states()))}")

    # ------------------------------------------------------------------
    # 5. Why: the posit bit-field taper (the paper's Figure 2 / Table I).
    # ------------------------------------------------------------------
    print("\nPosit(8,2) worked example from the paper (0_0001_10_1):")
    env = PositEnv(8, 2)
    layout = env.field_layout(0b0_0001_10_1)
    print(f"  fields: {layout}")
    print(f"  value : {env.to_float(0b0_0001_10_1)}  (paper: 1.5 * 2^-10)")

    print("\nTable I (computed from the format implementations):")
    print(render_table([r.render() for r in table1_rows()]))


if __name__ == "__main__":
    main()
