"""VICAR-style phylogenetics: HMM forward-algorithm likelihoods at
genome-scale magnitudes (the paper's Section V case study, scaled).

Demonstrates:
  * binary64 underflowing to a useless 0.0 likelihood,
  * log-space surviving but losing precision,
  * posit(64,18) surviving with ~2 orders of magnitude better accuracy,
  * the hardware view: what the FPGA forward units would cost and run.

Run:  python examples/phylogenetics_vicar.py
"""

from repro.apps import forward
from repro.apps.vicar import VicarConfig, run_vicar
from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.formats import PositEnv
from repro.hw import LOG, POSIT, ForwardUnit
from repro.report import CDF, cdf_table, orders_of_magnitude_gap, render_table


def main():
    # Scaled VICAR run: likelihoods near 2^-590,000 — the magnitude the
    # paper's T=100,000 HCG runs reach.
    config = VicarConfig(length=250, h_values=(6,), matrices_per_h=4,
                         bits_per_step=2_360.0, seed=7)
    backends = {
        "binary64": Binary64Backend(),
        "log": LogSpaceBackend(),
        "posit(64,18)": PositBackend(PositEnv(64, 18)),
    }
    print("Running the forward algorithm on 4 synthetic species-tree HMMs")
    print(f"(T={config.length} scaled sites, target likelihood scale "
          f"~2^{config.target_scale:.0f})...\n")
    result = run_vicar(config, backends)

    print(f"Reference likelihood exponents: {result.reference_scales}")
    print(f"binary64 underflows: {result.failure_count('binary64')} of "
          f"{len(result.reference_scales)} runs\n")

    cdfs = {fmt: CDF.from_samples(fmt, result.log10_errors(fmt))
            for fmt in ("log", "posit(64,18)")}
    print(render_table(cdf_table(cdfs),
                       title="Final-likelihood accuracy (Figure 10 style)"))
    gap = orders_of_magnitude_gap(cdfs["posit(64,18)"], cdfs["log"])
    print(f"\nposit(64,18) is {gap:.1f} orders of magnitude more accurate "
          f"at the median (paper: ~2 orders).")

    # Hardware view.
    print("\nFPGA forward-algorithm units for this model family "
          "(T=500,000 sites, 300 MHz):")
    rows = []
    for h in (13, 32, 64):
        log_u, posit_u = ForwardUnit(LOG, h), ForwardUnit(POSIT, h)
        rows.append({
            "H": h,
            "log time (s)": log_u.seconds(500_000),
            "posit time (s)": posit_u.seconds(500_000),
            "log LUTs": log_u.resources().lut,
            "posit LUTs": posit_u.resources().lut,
        })
    print(render_table(rows))


if __name__ == "__main__":
    main()
