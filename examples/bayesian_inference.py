"""Bayesian inference under underflow: Baum-Welch training and MCMC.

The paper motivates its whole study with one sentence: "underflow to
zero prevents proper convergence and leads to incorrect results in
algorithms such as Variational Inference and Markov Chain Monte Carlo."
This example demonstrates exactly that, end to end, on workloads whose
likelihoods live around 2^-5000:

  * Baum-Welch (EM) training: binary64's expected counts collapse to
    0/0; log-space and posit(64,18) train monotonically.
  * Metropolis-Hastings: binary64's acceptance ratios are 0/0 and the
    chain never moves; log-space and posit chains mix.

Run:  python examples/bayesian_inference.py
"""

from repro.apps import baum_welch, run_chain
from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.data import sample_hcg_like_hmm
from repro.formats import PositEnv
from repro.report import render_table


def training_demo():
    print("Baum-Welch training (likelihood ~2^-6000, 3 EM iterations):")
    hmm = sample_hcg_like_hmm(3, 30, seed=17, bits_per_step=200.0)
    rows = []
    for name, backend in (("binary64", Binary64Backend()),
                          ("log", LogSpaceBackend()),
                          ("posit(64,18)", PositBackend(PositEnv(64, 18)))):
        trace = baum_welch(hmm, backend, iterations=3)
        rows.append({
            "format": name,
            "outcome": "DEGENERATE (0/0 counts)" if trace.degenerate
            else "trained",
            "iterations completed": trace.iterations,
            "log2 L start": trace.log2_likelihoods[0]
            if trace.log2_likelihoods else None,
            "log2 L end": trace.log2_likelihoods[-1]
            if trace.log2_likelihoods else None,
            "monotone": None if trace.degenerate
            else trace.monotone_increasing(tol=1e-3),
        })
    print(render_table(rows))


def mcmc_demo():
    print("\nMetropolis-Hastings over emission magnitudes "
          "(likelihood ~2^-4500, 40 steps):")
    rows = []
    for name, backend in (("binary64", Binary64Backend()),
                          ("log", LogSpaceBackend()),
                          ("posit(64,18)", PositBackend(PositEnv(64, 18)))):
        chain = run_chain(backend, steps=40, seed=5)
        rows.append({
            "format": name,
            "accepted": chain.accepted,
            "rejected": chain.rejected,
            "stuck (0/0)": chain.stuck,
            "verdict": "chain mixes" if chain.mixed else "chain broken",
        })
    print(render_table(rows))
    print("\nThe binary64 chain cannot even evaluate an acceptance ratio;")
    print("this is the paper's motivating failure, reproduced.")


def main():
    training_demo()
    mcmc_demo()


if __name__ == "__main__":
    main()
