"""Designing your own number format for statistical computations.

The paper compares three fixed points in the design space (binary64,
log-space, posit(64,ES)).  This example uses the library's parameterized
format engines to explore further: custom IEEE exponent/fraction splits,
the full ES range, and the bit-budget model that predicts accuracy
before you measure it.

Run:  python examples/custom_formats.py
"""

from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.bigfloat import BigFloat, to_decimal_string
from repro.core import measure_op, per_op_error_log10, posit_effective_bits
from repro.core.bitbudget import logspace_effective_bits
from repro.formats import IEEEEnv, PositEnv, Real
from repro.report import render_table


def ieee_width_sweep():
    """What if binary64 had more exponent bits?  An ieee(15,49) spends
    four fraction bits to reach 2^-16400 — a fixed trade, where posit
    trades only when needed."""
    print("Custom IEEE formats (64-bit budget, varying exponent width):")
    rows = []
    for exp_bits in (11, 13, 15, 17, 19):
        env = IEEEEnv(exp_bits, 64 - exp_bits)
        rows.append({
            "format": env.name,
            "exponent bits": exp_bits,
            "fraction bits": env.frac_bits,
            "smallest positive": f"2^{env.smallest_positive_scale()}",
            "per-op err (log10)": per_op_error_log10(env.frac_bits),
        })
    print(render_table(rows))
    print("Even ieee(19,45) cannot reach LoFreq's 2^-434,916 p-values;\n"
          "posit(64,18) can, while offering MORE fraction bits than\n"
          "ieee(19,45) whenever |exponent| < ~2.4M.\n")


def posit_es_accuracy_measured_vs_predicted():
    """The bit-budget model predicts measured per-op accuracy."""
    print("posit(64,ES) at magnitude 2^-9000: predicted vs measured:")
    x = Real(0, (1 << 70) + 987_654_321, -9_000 - 70)
    y = Real(0, (1 << 70) + 123_456_789, -9_001 - 70)
    rows = []
    for es in (9, 12, 15, 18, 21):
        env = PositEnv(64, es)
        backend = PositBackend(env)
        measured = measure_op(backend, "add", x, y).log10_error
        predicted = per_op_error_log10(posit_effective_bits(env, -9_000))
        rows.append({"ES": es, "predicted": predicted, "measured": measured})
    log_pred = per_op_error_log10(logspace_effective_bits(-9_000))
    log_meas = measure_op(LogSpaceBackend(), "add", x, y).log10_error
    rows.append({"ES": "log-space", "predicted": log_pred,
                 "measured": log_meas})
    b64 = measure_op(Binary64Backend(), "add", x, y)
    rows.append({"ES": "binary64", "predicted": None,
                 "measured": None if not b64.ok else b64.log10_error})
    print(render_table(rows))
    print("(binary64 underflows at this magnitude — no measurement.)\n")


def extreme_value_rendering():
    """Printing values no float can hold."""
    print("Rendering extreme magnitudes exactly (repro.bigfloat.format):")
    for k in (-1_074, -31_744, -434_916, -2_900_000):
        x = BigFloat.exp2(k)
        print(f"  2^{k:>10} = {to_decimal_string(x, 6)}")


def main():
    ieee_width_sweep()
    posit_es_accuracy_measured_vs_predicted()
    extreme_value_rendering()


if __name__ == "__main__":
    main()
